package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/quack"
)

// ScalingPoint is one row of the E10 morsel-parallelism sweep. The JSON
// shape is the CI bench-trajectory artifact: durations in nanoseconds,
// speedups relative to the sweep's 1-thread baseline.
type ScalingPoint struct {
	Threads          int           `json:"threads"`
	ScanDur          time.Duration `json:"scan_ns"`
	AggDur           time.Duration `json:"agg_ns"`
	SortDur          time.Duration `json:"sort_ns"`
	WindowDur        time.Duration `json:"window_ns"`
	AggBudgetDur     time.Duration `json:"agg_budget_ns"` // grouped agg under memory_limit (spilling)
	ScanSpeedup      float64       `json:"scan_speedup"`  // vs the 1-thread baseline
	AggSpeedup       float64       `json:"agg_speedup"`
	SortSpeedup      float64       `json:"sort_speedup"`
	WindowSpeedup    float64       `json:"window_speedup"`
	AggBudgetSpeedup float64       `json:"agg_budget_speedup"`
}

// Durations returns the point's workload durations keyed by the names
// the bench gate reports.
func (p ScalingPoint) Durations() map[string]time.Duration {
	return map[string]time.Duration{
		"scan":       p.ScanDur,
		"agg":        p.AggDur,
		"sort":       p.SortDur,
		"window":     p.WindowDur,
		"agg_budget": p.AggBudgetDur,
	}
}

// scalingScanQuery is scan-and-filter bound with a tiny result: it
// measures the parallel pipeline itself, not result materialization.
const scalingScanQuery = "SELECT id, qty, price FROM t WHERE qty > 98 AND price < 10.0"

// scalingAggQuery is the paper-style grouped aggregation the morsel
// design targets: worker-local hash tables merged at the breaker.
const scalingAggQuery = "SELECT region, count(*), sum(qty), avg(price), min(price), max(price) FROM t GROUP BY region"

// scalingSortQuery is the parallel ORDER BY workload: per-worker sorted
// runs k-way merged at the breaker. The tie-heavy leading key makes the
// hidden (morsel, row) tiebreak carry the determinism guarantee; the
// full result is drained so the serial merge phase stays on the clock.
const scalingSortQuery = "SELECT id, qty, price FROM t ORDER BY qty DESC, price, id"

// scalingWindowQuery is the partitioned analytics workload: per-worker
// sorted runs feed the partition cutter and the frames evaluate on the
// exchange pool — ranking and a running sum per region.
const scalingWindowQuery = "SELECT id, row_number() OVER (PARTITION BY region ORDER BY qty DESC, id), sum(price) OVER (PARTITION BY region ORDER BY qty DESC, id) FROM t"

// scalingAggBudgetQuery is the budgeted-aggregation workload: a
// high-cardinality GROUP BY (rows/8 groups, arriving a morsel-block at
// a time) run under a memory_limit far below its aggregate state, so
// the partition-wise spilling path — radix spill, state runs, the
// partition merge finish — is what the sweep times. The sweep verifies
// its results identical across thread counts like every workload.
const scalingAggBudgetQuery = "SELECT id - id % 8, count(*), sum(qty), sum(price), min(price) FROM t GROUP BY 1"

// Scaling (E10) measures the morsel-driven engine's speedup over the
// single-threaded baseline on one dataset: a filtered scan pipeline and
// a grouped aggregation, each at every requested worker count. Results
// are checked to be row-for-row identical across thread counts — the
// engine's determinism guarantee — before any timing is reported.
func Scaling(w io.Writer, rows int, threadCounts []int) ([]ScalingPoint, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8}
	}
	db, err := quack.Open(":memory:", quack.WithThreads(1))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := GenSalesTable(db, "t", rows, 0.0, 11); err != nil {
		return nil, err
	}

	render := func(q string) (string, error) {
		res, err := db.Query(q)
		if err != nil {
			return "", err
		}
		var out strings.Builder
		for {
			c := res.NextChunk()
			if c == nil {
				return out.String(), nil
			}
			for r := 0; r < c.Len(); r++ {
				fmt.Fprintln(&out, c.Row(r))
			}
		}
	}
	// Best-of-3 timing; the first run warms the morsel scan path.
	timeQuery := func(q string) (time.Duration, error) {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			res, err := db.Query(q)
			if err != nil {
				return 0, err
			}
			for res.NextChunk() != nil {
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	setThreads := func(n int) error {
		_, err := db.Exec(fmt.Sprintf("PRAGMA threads=%d", n))
		return err
	}
	// The budgeted workload's memory_limit scales with the data so the
	// reduced CI sweep spills just like the full-size run: ~a quarter of
	// the aggregate state fits, the rest cycles through state runs.
	aggBudget := int64(rows) * 8
	if aggBudget < 1<<20 {
		aggBudget = 1 << 20
	}
	setLimit := func(limit int64) error {
		_, err := db.Exec(fmt.Sprintf("PRAGMA memory_limit=%d", limit))
		return err
	}

	var wantScan, wantAgg, wantSort, wantWindow, wantAggBudget string
	var out []ScalingPoint
	for _, threads := range threadCounts {
		if err := setThreads(threads); err != nil {
			return nil, err
		}
		gotScan, err := render(scalingScanQuery)
		if err != nil {
			return nil, err
		}
		gotAgg, err := render(scalingAggQuery)
		if err != nil {
			return nil, err
		}
		gotSort, err := render(scalingSortQuery)
		if err != nil {
			return nil, err
		}
		gotWindow, err := render(scalingWindowQuery)
		if err != nil {
			return nil, err
		}
		if err := setLimit(aggBudget); err != nil {
			return nil, err
		}
		gotAggBudget, err := render(scalingAggBudgetQuery)
		if err != nil {
			return nil, err
		}
		aggBudgetDur, err := timeQuery(scalingAggBudgetQuery)
		if err != nil {
			return nil, err
		}
		if err := setLimit(-1); err != nil {
			return nil, err
		}
		if threads == threadCounts[0] {
			wantScan, wantAgg, wantSort, wantWindow, wantAggBudget = gotScan, gotAgg, gotSort, gotWindow, gotAggBudget
			// The budgeted run must also match the unbudgeted aggregation
			// of the same query — spilling must not change results.
			unlimited, err := render(scalingAggBudgetQuery)
			if err != nil {
				return nil, err
			}
			if unlimited != gotAggBudget {
				return nil, fmt.Errorf("budgeted aggregation diverges from the unbudgeted run")
			}
		} else if gotScan != wantScan || gotAgg != wantAgg || gotSort != wantSort || gotWindow != wantWindow || gotAggBudget != wantAggBudget {
			return nil, fmt.Errorf("results diverge at %d threads", threads)
		}
		scanDur, err := timeQuery(scalingScanQuery)
		if err != nil {
			return nil, err
		}
		aggDur, err := timeQuery(scalingAggQuery)
		if err != nil {
			return nil, err
		}
		sortDur, err := timeQuery(scalingSortQuery)
		if err != nil {
			return nil, err
		}
		windowDur, err := timeQuery(scalingWindowQuery)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{
			Threads: threads, ScanDur: scanDur, AggDur: aggDur,
			SortDur: sortDur, WindowDur: windowDur, AggBudgetDur: aggBudgetDur,
		})
	}
	base := out[0]
	for i := range out {
		out[i].ScanSpeedup = float64(base.ScanDur) / float64(out[i].ScanDur)
		out[i].AggSpeedup = float64(base.AggDur) / float64(out[i].AggDur)
		out[i].SortSpeedup = float64(base.SortDur) / float64(out[i].SortDur)
		out[i].WindowSpeedup = float64(base.WindowDur) / float64(out[i].WindowDur)
		out[i].AggBudgetSpeedup = float64(base.AggBudgetDur) / float64(out[i].AggBudgetDur)
	}

	if w != nil {
		fmt.Fprintf(w, "E10 morsel-driven parallelism (%d rows; results verified identical across thread counts; budgeted agg spills under a %d-byte memory_limit)\n", rows, aggBudget)
		fmt.Fprintf(w, "%-8s %-14s %-9s %-14s %-9s %-14s %-9s %-14s %-9s %-14s %s\n", "threads", "scan+filter", "speedup", "group-by agg", "speedup", "order-by", "speedup", "window", "speedup", "budgeted agg", "speedup")
		for _, p := range out {
			fmt.Fprintf(w, "%-8d %-14v %-9s %-14v %-9s %-14v %-9s %-14v %-9s %-14v %.2fx\n",
				p.Threads, p.ScanDur.Round(time.Microsecond), fmt.Sprintf("%.2fx", p.ScanSpeedup),
				p.AggDur.Round(time.Microsecond), fmt.Sprintf("%.2fx", p.AggSpeedup),
				p.SortDur.Round(time.Microsecond), fmt.Sprintf("%.2fx", p.SortSpeedup),
				p.WindowDur.Round(time.Microsecond), fmt.Sprintf("%.2fx", p.WindowSpeedup),
				p.AggBudgetDur.Round(time.Microsecond), p.AggBudgetSpeedup)
		}
	}
	return out, nil
}

// CompareScaling gates the bench trajectory: it compares each
// workload's best duration across the sweeps and reports a regression
// line for every workload whose fresh best is more than tolerance
// (e.g. 0.30 = +30%) slower than the committed baseline's. Workloads
// absent from the baseline (newly added) pass.
func CompareScaling(baseline, fresh []ScalingPoint, tolerance float64) []string {
	best := func(points []ScalingPoint) map[string]time.Duration {
		out := map[string]time.Duration{}
		for _, p := range points {
			for name, d := range p.Durations() {
				if d <= 0 {
					continue
				}
				if cur, ok := out[name]; !ok || d < cur {
					out[name] = d
				}
			}
		}
		return out
	}
	baseBest, freshBest := best(baseline), best(fresh)
	var regressions []string
	for _, name := range []string{"scan", "agg", "sort", "window", "agg_budget"} {
		b, ok := baseBest[name]
		if !ok {
			continue
		}
		f, ok := freshBest[name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from the fresh sweep (baseline best %v)", name, b))
			continue
		}
		if float64(f) > float64(b)*(1+tolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: best %v vs baseline %v (+%.0f%%, tolerance +%.0f%%)",
				name, f.Round(time.Microsecond), b.Round(time.Microsecond),
				(float64(f)/float64(b)-1)*100, tolerance*100))
		}
	}
	return regressions
}
