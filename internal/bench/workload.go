// Package bench implements the paper's experiments (E1-E9 in DESIGN.md):
// workload generators, parameter sweeps, baselines and harnesses that
// print the same rows/series the paper's Table 1, Figure 1 and
// quantified claims report. cmd/quack-bench exposes each experiment as a
// CLI mode; bench_test.go wraps them as testing.B benchmarks.
package bench

import (
	"fmt"
	"math/rand"

	"repro/quack"
)

// Scale nudges every experiment's data sizes: 1.0 is the paper-scale
// default used by quack-bench; tests and -short runs use smaller values.
type Scale float64

func (s Scale) rows(base int) int {
	n := int(float64(base) * float64(s))
	if n < 1000 {
		n = 1000
	}
	return n
}

// GenSalesTable fills `name` with a synthetic OLAP fact table:
//
//	id BIGINT, region VARCHAR(8 distinct), qty BIGINT(1..100),
//	price DOUBLE, d BIGINT (measurement with -999 missing markers)
//
// This is the "data wrangling" shape from paper §2: wide fact data with
// encoded missing values.
func GenSalesTable(db *quack.DB, name string, rows int, missingFrac float64, seed int64) error {
	if _, err := db.Exec(fmt.Sprintf(
		"CREATE TABLE %s (id BIGINT, region VARCHAR, qty BIGINT, price DOUBLE, d BIGINT)", name)); err != nil {
		return err
	}
	regions := []string{"north", "south", "east", "west", "emea", "apac", "latam", "anz"}
	rng := rand.New(rand.NewSource(seed))
	app, err := db.Appender(name)
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		d := rng.Int63n(10_000)
		if rng.Float64() < missingFrac {
			d = -999
		}
		if err := app.AppendRow(
			int64(i),
			regions[rng.Intn(len(regions))],
			rng.Int63n(100)+1,
			rng.Float64()*1000,
			d,
		); err != nil {
			app.Abort()
			return err
		}
	}
	return app.Close()
}

// GenKeyedTable fills `name` with (k BIGINT, v BIGINT) where k is
// uniform in [0, keyDomain) — the join workload generator.
func GenKeyedTable(db *quack.DB, name string, rows int, keyDomain int64, seed int64) error {
	if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (k BIGINT, v BIGINT)", name)); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	app, err := db.Appender(name)
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if err := app.AppendRow(rng.Int63n(keyDomain), int64(i)); err != nil {
			app.Abort()
			return err
		}
	}
	return app.Close()
}
