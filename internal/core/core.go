// Package core wires QuackDB's subsystems into the embedded database the
// paper describes (§6): single-file checksummed storage with shadow-paged
// checkpoints, a separate WAL consumed by those checkpoints, HyPer-style
// MVCC, a cooperating buffer pool with allocation-time memory tests, the
// vectorized execution engine, and the SQL front end. The public quack
// package is a thin veneer over this one.
package core

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/adaptive"
	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/memtest"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/storage"
	"repro/internal/table"
	"repro/internal/txn"
	"repro/internal/vector"
	"repro/internal/wal"
)

// Config controls a Database instance.
type Config struct {
	// Path of the database file; "" or ":memory:" is volatile.
	Path string
	// MemoryLimit caps the buffer pool (bytes); <0 = unlimited. 0 (the
	// zero value) consults the QUACK_MEMORY_LIMIT environment variable —
	// a byte size like "64MB", plumbed like QUACK_THREADS so harnesses
	// (the CI differential matrix) can pin a budget without touching
	// call sites — and is unlimited when that is unset too. The
	// cooperation requirement (§4): an embedded DBMS must not assume it
	// owns the machine.
	MemoryLimit int64
	// TotalRAM the application and DBMS share, for the adaptive policy.
	TotalRAM int64
	// DisableChecksums skips verification on block reads (experiment E8).
	DisableChecksums bool
	// MemTest runs moving-inversions tests on buffer allocation (§3).
	MemTest bool
	// TmpDir for external-sort spill files ("" = os.TempDir()).
	TmpDir string
	// VacuumEvery runs undo-chain garbage collection after this many
	// commits (0 = default 256).
	VacuumEvery int64
	// Threads is the default worker-pool size for parallel query
	// pipelines; <=0 consults the QUACK_THREADS environment variable and
	// then runtime.GOMAXPROCS(0). 1 disables intra-query parallelism.
	// Sessions and PRAGMA threads can override it.
	Threads int
	// LogSink receives one line per engine log event (today: the
	// slow-query log enabled by PRAGMA log_min_duration_ms). Each call
	// is one complete JSON object without a trailing newline. nil
	// discards — the embedded default is silence.
	LogSink func(line string)
}

// Database is one embedded database instance. It is safe for concurrent
// use by multiple sessions.
type Database struct {
	cfg     Config
	store   *storage.Manager
	wal     *wal.Log
	cat     *catalog.Catalog
	txns    *txn.Manager
	pool    *buffer.Pool
	monitor *adaptive.Monitor
	policy  *adaptive.Policy
	logger  walLogger
	sched   *sched.Scheduler
	admit   admitState

	ddlMu       sync.Mutex // serializes DDL and checkpoints
	pendingFree []storage.BlockID
	commitCount atomic.Int64
	threads     atomic.Int64 // default parallelism for new queries
	zoneMapsOff atomic.Bool  // disables zone-map segment skipping
	encExecOff  atomic.Bool  // disables encoded execution over compressed segments
	closed      atomic.Bool

	// execStats collects engine-level counters (surfaced via PRAGMA).
	execStats exec.Stats

	// metrics is the engine-wide registry; every subsystem counter above
	// and beside it is registered there at open, so one snapshot reads
	// the whole engine. The legacy PRAGMA counters read through it.
	metrics      *obs.Registry
	decodeBytes  *obs.ShardedCounter // segment bytes decompressed by scans
	checkpointNs *obs.Histogram
	queryNs      *obs.Histogram

	// Slow-query log: queries at or above this duration (milliseconds)
	// emit one JSON line to logSink; <0 (default) disables.
	logMinDurMs atomic.Int64
	logSink     func(string)
}

// Open opens or creates a database.
func Open(cfg Config) (*Database, error) {
	if cfg.VacuumEvery <= 0 {
		cfg.VacuumEvery = 256
	}
	if cfg.TotalRAM <= 0 {
		cfg.TotalRAM = 8 << 30
	}
	if cfg.Threads <= 0 {
		cfg.Threads = defaultThreads()
	}
	if cfg.MemoryLimit == 0 {
		cfg.MemoryLimit = defaultMemoryLimit()
	}
	tester := memtest.NewTester(nil)
	pool := buffer.NewPool(cfg.MemoryLimit, tester)
	pool.EnableMemTest(cfg.MemTest)

	store, created, err := storage.Open(cfg.Path, storage.Options{DisableChecksums: cfg.DisableChecksums})
	if err != nil {
		return nil, err
	}
	db := &Database{
		cfg:     cfg,
		store:   store,
		cat:     catalog.New(),
		pool:    pool,
		monitor: adaptive.NewMonitor(),
	}
	db.policy = adaptive.NewPolicy(db.monitor, cfg.TotalRAM)
	db.threads.Store(int64(cfg.Threads))
	db.zoneMapsOff.Store(defaultZoneMapsDisabled())
	db.encExecOff.Store(defaultEncodedExecDisabled())
	// One engine-wide worker pool multiplexes runnable morsels from every
	// active query (morsel-driven scheduling): total engine goroutines are
	// bounded by the pool size no matter how many sessions run queries
	// concurrently. PRAGMA threads resizes it; per-session Threads only
	// caps how many tasks a single query keeps runnable.
	db.sched = sched.New(cfg.Threads)
	db.admit.init(db)
	db.logSink = cfg.LogSink
	db.logMinDurMs.Store(-1)
	db.initMetrics()

	if !store.InMemory() {
		log, err := wal.Open(cfg.Path + ".wal")
		if err != nil {
			_ = store.Close()
			return nil, err
		}
		db.wal = log
	}
	db.txns = txn.NewManager(func(records []txn.LogRecord, commitTS uint64) error {
		if db.wal == nil {
			return nil
		}
		recs := make([]wal.Record, len(records))
		for i, r := range records {
			recs[i] = wal.Record{Type: wal.RecordType(r.Type), Payload: r.Payload}
		}
		return db.wal.AppendCommit(recs, commitTS)
	})

	if !created {
		if err := db.loadCatalog(); err != nil {
			db.closeFiles()
			return nil, err
		}
	}
	if err := db.replayWAL(); err != nil {
		db.closeFiles()
		return nil, fmt.Errorf("recovery: %w", err)
	}
	return db, nil
}

// initMetrics builds the engine-wide registry and hooks every
// subsystem into it. Counters that predate the registry (exec.Stats
// atomics, pool gauges) are bridged rather than moved, so the legacy
// PRAGMA readbacks and the registry report the same cells.
func (db *Database) initMetrics() {
	m := obs.NewRegistry()
	db.metrics = m

	// Scans. The *_total names bridge the exec.Stats atomics the
	// per-scan hooks already maintain; decode bytes are booked by the
	// table layer on every segment materialization.
	m.Int64("scan_segments_scanned_total", &db.execStats.SegmentsScanned)
	m.Int64("scan_segments_skipped_total", &db.execStats.SegmentsSkipped)
	m.Int64("scan_segments_encoded_total", &db.execStats.SegmentsEncodedExec)
	m.Int64("scan_rows_encoded_selected_total", &db.execStats.RowsEncodedSelected)
	db.decodeBytes = m.Sharded("scan_bytes_decompressed_total")

	// Operator spilling under an enforced memory_limit.
	m.Int64("agg_spill_partitions_total", &db.execStats.AggSpillPartitions)
	m.Int64("agg_spill_bytes_total", &db.execStats.AggSpilledBytes)
	m.Int64("sort_spill_bytes_total", &db.execStats.SortSpilledBytes)

	// Buffer pool (the cooperation surface of §4).
	m.Gauge("pool_reserved_bytes", db.pool.Used)
	m.Gauge("pool_peak_bytes", db.pool.Peak)
	m.Gauge("pool_limit_bytes", db.pool.Limit)
	m.Gauge("pool_evictions_total", db.pool.Evictions)

	// Durability: WAL growth and checkpoint latency.
	m.Gauge("wal_bytes", db.WALSize)
	db.checkpointNs = m.Histogram("checkpoint")

	// Engine-wide morsel scheduler.
	db.sched.SetMetrics(sched.Metrics{
		Steps:      m.Counter("sched_steps_total"),
		StepWait:   m.Histogram("sched_step_wait"),
		AgingPicks: m.Counter("sched_aging_picks_total"),
	})
	m.Gauge("sched_runnable_depth", func() int64 { return int64(db.sched.RunnableDepth()) })

	// Admission control.
	db.admit.met = admitMetrics{
		admitted: m.Counter("admission_admitted_total"),
		queued:   m.Counter("admission_queued_total"),
		rejected: m.Counter("admission_rejected_total"),
		wait:     m.Histogram("admission_wait"),
	}
	m.Gauge("admission_queue_depth", db.admit.queueDepth)
	m.Gauge("admission_running", db.admit.runningCount)
	m.Gauge("admission_claimed_bytes", db.admit.claimedBytes)

	// Query-level latency (SELECT and DML plans).
	db.queryNs = m.Histogram("query")
}

// Metrics snapshots the engine-wide registry as sorted samples.
func (db *Database) Metrics() []obs.Sample { return db.metrics.Snapshot() }

// MetricsMap snapshots the registry as a name→value map.
func (db *Database) MetricsMap() map[string]int64 { return db.metrics.SnapshotMap() }

// MetricsText writes the registry in "name value\n" text exposition.
func (db *Database) MetricsText(w io.Writer) error { return db.metrics.WriteText(w) }

// metricValue reads one registry cell (PRAGMA readbacks).
func (db *Database) metricValue(name string) int64 {
	v, _ := db.metrics.Get(name)
	return v
}

// closeFiles releases the store and WAL on Open error paths; the
// original error takes precedence, so close errors are discarded
// explicitly (Database.Close is the path that propagates them).
func (db *Database) closeFiles() {
	if db.wal != nil {
		_ = db.wal.Close()
	}
	_ = db.store.Close()
}

// Catalog exposes the schema objects.
func (db *Database) Catalog() *catalog.Catalog { return db.cat }

// Txns exposes the transaction manager.
func (db *Database) Txns() *txn.Manager { return db.txns }

// Pool exposes the buffer pool.
func (db *Database) Pool() *buffer.Pool { return db.pool }

// Monitor exposes the resource monitor the host application feeds.
func (db *Database) Monitor() *adaptive.Monitor { return db.monitor }

// Policy exposes the adaptive resource policy.
func (db *Database) Policy() *adaptive.Policy { return db.policy }

// Store exposes the block manager (experiments and tools).
func (db *Database) Store() *storage.Manager { return db.store }

// Threads returns the default parallelism for new queries.
func (db *Database) Threads() int { return int(db.threads.Load()) }

// SetThreads changes the default parallelism for new queries; n <= 0
// resets to the same default Open resolves (QUACK_THREADS, then
// runtime.GOMAXPROCS(0)).
func (db *Database) SetThreads(n int) {
	if n <= 0 {
		n = defaultThreads()
	}
	db.threads.Store(int64(n))
	// The shared pool follows the database default so PRAGMA threads
	// sweeps (benchmarks, harnesses) exercise real pool sizes; session
	// Threads overrides never resize it — they only cap task width.
	db.sched.Resize(n)
}

// Scheduler exposes the engine-wide morsel scheduler (tests).
func (db *Database) Scheduler() *sched.Scheduler { return db.sched }

// defaultThreads resolves the engine-wide default parallelism: the
// QUACK_THREADS environment variable lets harnesses (CI matrices,
// benchmarks) pin it without touching call sites; otherwise every core
// the host process owns.
func defaultThreads() int {
	if env := os.Getenv("QUACK_THREADS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
		// A set-but-unusable value is a harness misconfiguration; say so
		// instead of silently testing GOMAXPROCS twice in a CI matrix.
		fmt.Fprintf(os.Stderr, "quack: ignoring invalid QUACK_THREADS=%q\n", env)
	}
	return runtime.GOMAXPROCS(0)
}

// ZoneMapsEnabled reports whether scans may skip segments refuted by
// zone maps. Skipping is exact (the pushed filter is still applied per
// row), so this only trades planning observability for the differential
// baseline.
func (db *Database) ZoneMapsEnabled() bool { return !db.zoneMapsOff.Load() }

// SetZoneMaps toggles zone-map segment skipping (PRAGMA zone_maps).
func (db *Database) SetZoneMaps(on bool) { db.zoneMapsOff.Store(!on) }

// defaultZoneMapsDisabled resolves the QUACK_DISABLE_ZONEMAPS
// environment variable. Like QUACK_THREADS and QUACK_MEMORY_LIMIT it
// exists for harnesses: the CI differential matrix runs a leg with
// skipping off and asserts byte-identical results against the skipping
// engine.
func defaultZoneMapsDisabled() bool {
	env := os.Getenv("QUACK_DISABLE_ZONEMAPS")
	return env == "1" || env == "true" || env == "TRUE"
}

// EncodedExecEnabled reports whether scans may evaluate exact pushed
// conjuncts directly over compressed segments and materialize only the
// selected rows. Like zone maps this is a pure execution strategy —
// results are byte-identical either way.
func (db *Database) EncodedExecEnabled() bool { return !db.encExecOff.Load() }

// SetEncodedExec toggles encoded execution (PRAGMA encoded_exec).
func (db *Database) SetEncodedExec(on bool) { db.encExecOff.Store(!on) }

// defaultEncodedExecDisabled resolves the QUACK_DISABLE_ENCODED_EXEC
// environment variable; the CI differential matrix runs legs with
// encoded execution forced off, mirroring QUACK_DISABLE_ZONEMAPS.
func defaultEncodedExecDisabled() bool {
	env := os.Getenv("QUACK_DISABLE_ENCODED_EXEC")
	return env == "1" || env == "true" || env == "TRUE"
}

// defaultMemoryLimit resolves the engine-wide default memory budget:
// the QUACK_MEMORY_LIMIT environment variable (a byte size such as
// "64MB") when set, unlimited otherwise. Like QUACK_THREADS it exists
// for harnesses — the CI differential matrix runs a budgeted leg that
// forces the operator spill paths on every push.
func defaultMemoryLimit() int64 {
	env := os.Getenv("QUACK_MEMORY_LIMIT")
	if env == "" {
		return 0
	}
	bytes, err := parseByteSize(env)
	if err != nil || bytes <= 0 {
		// A set-but-unusable value is a harness misconfiguration; say so
		// instead of silently running an unlimited leg twice.
		fmt.Fprintf(os.Stderr, "quack: ignoring invalid QUACK_MEMORY_LIMIT=%q\n", env)
		return 0
	}
	return bytes
}

// WALSize returns the current WAL size in bytes (0 for in-memory).
func (db *Database) WALSize() int64 { return db.wal.Size() }

// LogInsert queues an insert WAL record into tx (bulk appenders).
func (db *Database) LogInsert(tx *txn.Transaction, tableName string, chunk *vector.Chunk) {
	db.logger.LogInsert(tx, tableName, chunk)
}

// AfterCommit runs post-commit housekeeping for externally managed
// transactions (bulk appenders).
func (db *Database) AfterCommit() { db.afterCommit() }

// TmpDir returns the spill directory.
func (db *Database) TmpDir() string {
	if db.cfg.TmpDir != "" {
		return db.cfg.TmpDir
	}
	return os.TempDir()
}

// loadCatalog reads the catalog chain from the storage root and
// reconstructs the schema with lazy column loaders.
func (db *Database) loadCatalog() error {
	root := db.store.Root()
	if root == storage.InvalidBlock {
		return nil
	}
	payload, _, err := storage.ReadChain(db.store, root)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	tables, views, err := catalog.Deserialize(payload)
	if err != nil {
		return err
	}
	for _, dt := range tables {
		entry := &catalog.Table{
			Name:      dt.Name,
			Columns:   dt.Columns,
			DiskRows:  dt.DiskRows,
			ColChains: dt.ColChains,
			Stats:     dt.Stats,
		}
		entry.ChainBlocks = make([][]storage.BlockID, len(dt.Columns))
		entry.Data = table.NewPersisted(entry.Types(), dt.DiskRows, db.columnLoader(entry), db.pool)
		entry.Data.SetDecodeCounter(db.decodeBytes)
		entry.Data.SetSegmentStats(dt.Stats)
		if err := db.cat.CreateTable(entry); err != nil {
			return err
		}
	}
	for i := range views {
		v := views[i]
		if err := db.cat.CreateView(&v); err != nil {
			return err
		}
	}
	return nil
}

// columnLoader returns the lazy loader reading one column's block chain.
// It closes over the catalog entry so checkpoints that move chains are
// picked up. The loader hands back the still-compressed per-segment
// payloads; segments are decoded only when a scan materializes them, so
// zone-map-refuted segments are never decompressed.
func (db *Database) columnLoader(entry *catalog.Table) table.ColumnLoader {
	return func(col int) ([][]byte, int64, error) {
		head := entry.ColChains[col]
		if head == storage.InvalidBlock {
			return [][]byte{}, 0, nil
		}
		payload, blocks, err := storage.ReadChain(db.store, head)
		if err != nil {
			return nil, 0, err
		}
		entry.ChainBlocks[col] = blocks
		return table.ParseColumnPayload(payload)
	}
}

// replayWAL applies every committed transaction recovered from the log.
func (db *Database) replayWAL() error {
	committed, err := db.wal.Replay()
	if err != nil {
		return err
	}
	for _, tx := range committed {
		for _, rec := range tx.Records {
			if err := db.applyRecord(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

func (db *Database) applyRecord(rec wal.Record) error {
	switch rec.Type {
	case wal.RecCreateTable:
		name, cols, err := decodeCreateTable(rec.Payload)
		if err != nil {
			return err
		}
		entry := &catalog.Table{Name: name}
		for _, c := range cols {
			entry.Columns = append(entry.Columns, catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
		entry.Data = table.New(entry.Types(), db.pool)
		entry.Data.SetDecodeCounter(db.decodeBytes)
		return db.cat.CreateTable(entry)
	case wal.RecDropTable:
		name, _, err := getString(rec.Payload)
		if err != nil {
			return err
		}
		_, err = db.cat.DropTable(name)
		return err
	case wal.RecCreateView:
		name, sqlText, err := decodeCreateView(rec.Payload)
		if err != nil {
			return err
		}
		return db.cat.CreateView(&catalog.View{Name: name, SQL: sqlText})
	case wal.RecDropView:
		name, _, err := getString(rec.Payload)
		if err != nil {
			return err
		}
		return db.cat.DropView(name)
	case wal.RecInsert:
		name, chunk, err := decodeInsert(rec.Payload)
		if err != nil {
			return err
		}
		entry, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		return entry.Data.AppendCommitted(chunk, txn.EpochTS)
	case wal.RecUpdate:
		name, col, rowIDs, vals, err := decodeUpdate(rec.Payload)
		if err != nil {
			return err
		}
		entry, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		return entry.Data.ApplyCommittedUpdate(col, rowIDs, vals)
	case wal.RecDelete:
		name, rowIDs, err := decodeDelete(rec.Payload)
		if err != nil {
			return err
		}
		entry, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		return entry.Data.ApplyCommittedDelete(rowIDs, txn.EpochTS)
	default:
		return fmt.Errorf("unknown WAL record type %d", rec.Type)
	}
}

// afterCommit runs post-commit housekeeping: periodic undo vacuum.
func (db *Database) afterCommit() {
	n := db.commitCount.Add(1)
	if n%db.cfg.VacuumEvery == 0 {
		db.Vacuum()
	}
}

// Vacuum prunes undo versions no snapshot can need anymore.
func (db *Database) Vacuum() {
	oldest := db.txns.OldestVisibleTS()
	for _, t := range db.cat.Tables() {
		t.Data.Vacuum(oldest)
	}
}

// Close checkpoints (persistent databases) and releases all files.
func (db *Database) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	// Callers must have drained their queries; retiring the pool first
	// turns a violation into a loud panic instead of a hung checkpoint.
	db.sched.Stop()
	var firstErr error
	if !db.store.InMemory() {
		if err := db.Checkpoint(); err != nil {
			firstErr = err
		}
	}
	if db.wal != nil {
		if err := db.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := db.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
