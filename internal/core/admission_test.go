package core

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func admitDB(t *testing.T, limit int64) *Database {
	t.Helper()
	db, err := Open(Config{Path: ":memory:", MemoryLimit: limit, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestAdmitUnlimited: no budget, no gating.
func TestAdmitUnlimited(t *testing.T) {
	db := admitDB(t, -1)
	for i := 0; i < 100; i++ {
		release, _, err := db.admit.admit(1.0, 0, 100)
		if err != nil {
			t.Fatalf("admission gated an unlimited database: %v", err)
		}
		defer release()
	}
}

// TestAdmitFailFast: with depth 0 a query that does not fit is rejected
// immediately, and the slot frees on release.
func TestAdmitFailFast(t *testing.T) {
	db := admitDB(t, 1<<20)
	r1, _, err := db.admit.admit(0.6, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.admit.admit(0.6, 0, 100); err == nil {
		t.Fatal("second 0.6 claim of a full budget admitted with depth 0")
	} else if !strings.Contains(err.Error(), "fail") {
		t.Fatalf("unexpected fail-fast error: %v", err)
	}
	r1()
	r2, _, err := db.admit.admit(0.6, 0, 100)
	if err != nil {
		t.Fatalf("claim after release rejected: %v", err)
	}
	r2()
}

// TestAdmitAlwaysOne: even a claim exceeding the whole budget admits
// when nothing else runs — serial progress beats deadlock.
func TestAdmitAlwaysOne(t *testing.T) {
	db := admitDB(t, 1)
	release, _, err := db.admit.admit(1.0, 0, 100)
	if err != nil {
		t.Fatalf("sole query rejected: %v", err)
	}
	release()
}

// TestAdmitQueueWaits: a waiter is admitted when the blocking query
// releases.
func TestAdmitQueueWaits(t *testing.T) {
	db := admitDB(t, 1<<20)
	r1, _, err := db.admit.admit(0.8, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan func(), 1)
	go func() {
		r2, _, err := db.admit.admit(0.8, 8, 100)
		if err != nil {
			t.Errorf("queued claim rejected: %v", err)
		}
		admitted <- r2
	}()
	select {
	case <-admitted:
		t.Fatal("second 0.8 claim admitted while the first still holds")
	case <-time.After(50 * time.Millisecond):
	}
	r1()
	select {
	case r2 := <-admitted:
		r2()
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never admitted after release")
	}
}

// TestAdmitQueueFull: arrivals beyond the queue depth are rejected with
// the queue-full error while earlier waiters keep their place.
func TestAdmitQueueFull(t *testing.T) {
	db := admitDB(t, 1<<20)
	r1, _, err := db.admit.admit(0.9, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const depth = 2
	started := make(chan struct{}, depth)
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			r, _, err := db.admit.admit(0.9, depth, 100)
			if err != nil {
				t.Errorf("waiter rejected: %v", err)
				return
			}
			r()
		}()
	}
	for i := 0; i < depth; i++ {
		<-started
	}
	// Wait until both goroutines are actually queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		db.admit.mu.Lock()
		n := len(db.admit.queue)
		db.admit.mu.Unlock()
		if n == depth {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters queued", n, depth)
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := db.admit.admit(0.9, depth, 100); err == nil {
		t.Fatal("arrival beyond queue depth admitted")
	} else if !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("unexpected queue-full error: %v", err)
	}
	r1()
	wg.Wait()
}

// TestAdmitPriorityOrder: of two waiters, the higher-priority one is
// admitted first even though it arrived second.
func TestAdmitPriorityOrder(t *testing.T) {
	db := admitDB(t, 1<<20)
	r1, _, err := db.admit.admit(0.9, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	enqueue := func(prio int) {
		go func() {
			r, _, err := db.admit.admit(0.9, 8, prio)
			if err != nil {
				t.Errorf("waiter rejected: %v", err)
				return
			}
			order <- prio
			r()
		}()
		// Wait for the waiter to register before starting the next so
		// arrival order is deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for {
			db.admit.mu.Lock()
			queued := false
			for _, w := range db.admit.queue {
				if w.priority == prio {
					queued = true
				}
			}
			db.admit.mu.Unlock()
			if queued {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter with priority %d never queued", prio)
			}
			time.Sleep(time.Millisecond)
		}
	}
	enqueue(100)
	enqueue(300)
	r1()
	if first := <-order; first != 300 {
		t.Fatalf("priority-100 waiter admitted before priority-300")
	}
	<-order
}
