package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/table"
	"repro/internal/txn"
)

// ErrBusy is returned when a checkpoint is requested while transactions
// are in flight. WAL truncation is only sound when every logged change
// is covered by the new storage image, which requires quiescence.
var ErrBusy = errors.New("checkpoint requires no active transactions")

// Checkpoint persists all committed state into the database file and
// truncates the WAL (§6): new blocks are written first (shadow paging),
// then the header's root pointer is swapped atomically — a crash at any
// point leaves either the old or the new checkpoint fully intact.
// Columns that did not change since the last checkpoint keep their
// existing block chains and are not rewritten (§2's column-partitioning
// requirement); a bulk update of one column rewrites only that column.
func (db *Database) Checkpoint() error {
	if db.store.InMemory() {
		return nil
	}
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()

	start := time.Now()
	err := db.txns.Quiesce(func(snap *txn.Transaction, inFlight int) error {
		if inFlight > 0 {
			return ErrBusy
		}
		var newlyFree []storage.BlockID

		for _, entry := range db.cat.Tables() {
			data := entry.Data
			rewriteAll := data.AppendDirty() || data.DeleteDirty()
			var serializedRows int64 = -1
			if len(entry.Stats) != len(entry.Columns) {
				entry.Stats = make([][]table.ColStats, len(entry.Columns))
			}
			for c := range entry.Columns {
				if !rewriteAll && !data.ColDirty(c) && entry.ColChains[c] != storage.InvalidBlock {
					continue // unchanged column: keep its chain (and its stats)
				}
				payload, rows, stats, err := data.SerializeColumn(snap, c)
				if err != nil {
					return fmt.Errorf("checkpoint %s.%s: %w", entry.Name, entry.Columns[c].Name, err)
				}
				entry.Stats[c] = stats
				if serializedRows >= 0 && rows != serializedRows {
					return fmt.Errorf("checkpoint %s: column row counts diverge (%d vs %d)", entry.Name, serializedRows, rows)
				}
				serializedRows = rows
				w := storage.NewChainWriter(db.store)
				if _, err := w.Write(payload); err != nil {
					return err
				}
				head, blocks, err := w.Finish()
				if err != nil {
					return err
				}
				// Old chain blocks become free after the header swap.
				if entry.ColChains[c] != storage.InvalidBlock {
					old := entry.ChainBlocks[c]
					if old == nil {
						// Chain never read this run; walk it to free it.
						_, ids, err := storage.ReadChain(db.store, entry.ColChains[c])
						if err == nil {
							old = ids
						}
					}
					newlyFree = append(newlyFree, old...)
				}
				entry.ColChains[c] = head
				entry.ChainBlocks[c] = blocks
			}
			if serializedRows >= 0 {
				entry.DiskRows = serializedRows
			}
		}

		// Serialize the catalog into a fresh chain; the old one is freed.
		oldRoot := db.store.Root()
		w := storage.NewChainWriter(db.store)
		if _, err := w.Write(db.cat.Serialize()); err != nil {
			return err
		}
		root, _, err := w.Finish()
		if err != nil {
			return err
		}
		if oldRoot != storage.InvalidBlock {
			_, oldBlocks, err := storage.ReadChain(db.store, oldRoot)
			if err == nil {
				newlyFree = append(newlyFree, oldBlocks...)
			}
		}
		newlyFree = append(newlyFree, db.pendingFree...)
		db.pendingFree = nil

		if err := db.store.Checkpoint(root, newlyFree); err != nil {
			return err
		}
		if err := db.wal.Truncate(); err != nil {
			return err
		}

		// Reconcile in-memory state with the new image. Tables whose
		// layout still matches the image just become clean (and their
		// columns evictable); tables compacted by deletes or aborted
		// appends are rebuilt lazily from the image so that in-memory
		// row ids equal on-disk row ids again — future WAL records
		// address rows by id and must agree with the image.
		for _, entry := range db.cat.Tables() {
			if entry.Data.LayoutDiverged() {
				entry.ChainBlocks = make([][]storage.BlockID, len(entry.Columns))
				entry.Data = table.NewPersisted(entry.Types(), entry.DiskRows, db.columnLoader(entry), db.pool)
				entry.Data.SetDecodeCounter(db.decodeBytes)
				entry.Data.SetSegmentStats(entry.Stats)
				continue
			}
			entry.Data.SetDiskRows(entry.DiskRows)
			entry.Data.ResetDirty()
		}
		return nil
	})
	if err == nil && db.checkpointNs != nil {
		db.checkpointNs.Observe(time.Since(start).Nanoseconds())
	}
	return err
}
