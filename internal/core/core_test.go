package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
	"repro/internal/types"
)

func openCore(t *testing.T, path string) *Database {
	t.Helper()
	db, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func execSQL(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.NewSession().ExecuteOne(sql)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return res
}

func queryStrings(t *testing.T, db *Database, sql string) [][]string {
	t.Helper()
	res, err := db.NewSession().ExecuteOne(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	var out [][]string
	for _, chunk := range res.Chunks {
		for r := 0; r < chunk.Len(); r++ {
			row := make([]string, chunk.NumCols())
			for c := 0; c < chunk.NumCols(); c++ {
				row[c] = chunk.Cols[c].Get(r).String()
			}
			out = append(out, row)
		}
	}
	return out
}

// copyCrashImage snapshots the database and WAL files as a crash would
// leave them (the original handle stays open and is never checkpointed).
func copyCrashImage(t *testing.T, path string) string {
	t.Helper()
	dst := path + ".crash"
	for _, suffix := range []string{"", ".wal"} {
		src, err := os.Open(path + suffix)
		if err != nil {
			if suffix == ".wal" && errors.Is(err, os.ErrNotExist) {
				continue
			}
			t.Fatal(err)
		}
		out, err := os.Create(dst + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, src); err != nil {
			t.Fatal(err)
		}
		src.Close()
		out.Close()
	}
	return dst
}

func TestCrashRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.qdb")
	db := openCore(t, path)
	execSQL(t, db, "CREATE TABLE t (id BIGINT, s VARCHAR)")
	execSQL(t, db, "INSERT INTO t VALUES (1, 'one'), (2, 'two')")
	execSQL(t, db, "UPDATE t SET s = 'TWO' WHERE id = 2")
	execSQL(t, db, "DELETE FROM t WHERE id = 1")
	execSQL(t, db, "CREATE VIEW v AS SELECT s FROM t")

	// Crash: no checkpoint ran, everything lives only in the WAL.
	crash := copyCrashImage(t, path)
	db2 := openCore(t, crash)
	defer db2.Close()
	got := queryStrings(t, db2, "SELECT id, s FROM t")
	if fmt.Sprint(got) != fmt.Sprint([][]string{{"2", "TWO"}}) {
		t.Fatalf("recovered: %v", got)
	}
	if got := queryStrings(t, db2, "SELECT s FROM v"); got[0][0] != "TWO" {
		t.Fatalf("view lost: %v", got)
	}
	db.Close()
}

func TestCrashAfterCheckpointPlusWAL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.qdb")
	db := openCore(t, path)
	execSQL(t, db, "CREATE TABLE t (v BIGINT)")
	execSQL(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint changes live in the WAL only.
	execSQL(t, db, "INSERT INTO t VALUES (4)")
	execSQL(t, db, "UPDATE t SET v = 30 WHERE v = 3")

	crash := copyCrashImage(t, path)
	db2 := openCore(t, crash)
	defer db2.Close()
	got := queryStrings(t, db2, "SELECT sum(v), count(*) FROM t")
	if fmt.Sprint(got) != fmt.Sprint([][]string{{"37", "4"}}) {
		t.Fatalf("recovered: %v", got)
	}
	db.Close()
}

func TestCheckpointRewritesOnlyDirtyColumns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.qdb")
	db := openCore(t, path)
	defer db.Close()
	execSQL(t, db, "CREATE TABLE wide (a BIGINT, b BIGINT, c BIGINT, d BIGINT)")
	var insert string
	for i := 0; i < 2000; i++ {
		if i > 0 {
			insert += ","
		}
		insert += fmt.Sprintf("(%d,%d,%d,%d)", i, i, i, i)
	}
	execSQL(t, db, "INSERT INTO wide VALUES "+insert)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	entry, err := db.Catalog().Table("wide")
	if err != nil {
		t.Fatal(err)
	}
	chainsBefore := append([]storage.BlockID(nil), entry.ColChains...)

	// Update only column b; the checkpoint must keep a, c, d chains.
	execSQL(t, db, "UPDATE wide SET b = b + 1")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i, head := range entry.ColChains {
		moved := head != chainsBefore[i]
		if i == 1 && !moved {
			t.Error("updated column b was not rewritten")
		}
		if i != 1 && moved {
			t.Errorf("unchanged column %d was rewritten", i)
		}
	}
}

func TestCheckpointBusyWithActiveTxn(t *testing.T) {
	db := openCore(t, filepath.Join(t.TempDir(), "db.qdb"))
	defer db.Close()
	execSQL(t, db, "CREATE TABLE t (v BIGINT)")
	sess := db.NewSession()
	if _, err := sess.Execute("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Execute("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrBusy) {
		t.Fatalf("checkpoint during txn: %v", err)
	}
	if _, err := sess.Execute("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteCompactionAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.qdb")
	db := openCore(t, path)
	execSQL(t, db, "CREATE TABLE t (v BIGINT)")
	execSQL(t, db, "INSERT INTO t VALUES (1), (2), (3), (4), (5)")
	execSQL(t, db, "DELETE FROM t WHERE v % 2 = 0")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction row ids must agree between memory and disk: a
	// delete after the checkpoint and a crash-recovery replay must hit
	// the same rows.
	execSQL(t, db, "DELETE FROM t WHERE v = 5")
	crash := copyCrashImage(t, path)
	db2 := openCore(t, crash)
	defer db2.Close()
	got := queryStrings(t, db2, "SELECT v FROM t ORDER BY v")
	if fmt.Sprint(got) != fmt.Sprint([][]string{{"1"}, {"3"}}) {
		t.Fatalf("after compaction+recovery: %v", got)
	}
	db.Close()
}

func TestCorruptionDetectedOnScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.qdb")
	db := openCore(t, path)
	execSQL(t, db, "CREATE TABLE t (v BIGINT, s VARCHAR)")
	var insert string
	for i := 0; i < 5000; i++ {
		if i > 0 {
			insert += ","
		}
		insert += fmt.Sprintf("(%d,'row-%d')", i, i)
	}
	execSQL(t, db, "INSERT INTO t VALUES "+insert)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit near the start of every data block's payload, so
	// whichever blocks hold live chains are hit.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for blk := 2; int64(blk)*storage.BlockSize+200 < int64(len(raw)); blk++ {
		raw[int64(blk)*storage.BlockSize+150] ^= 0x40
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Config{Path: path})
	if err != nil {
		// Corruption in the catalog chain is also a valid detection.
		return
	}
	defer db2.Close()
	_, qerr := db2.NewSession().ExecuteOne("SELECT sum(v), min(s) FROM t")
	if qerr == nil {
		t.Fatal("silent corruption: scan returned without error")
	}
	if !errors.Is(qerr, storage.ErrCorrupt) {
		t.Logf("corruption surfaced as: %v", qerr)
	}
}

func TestRowEngineMatchesVectorized(t *testing.T) {
	db := openCore(t, "")
	defer db.Close()
	execSQL(t, db, "CREATE TABLE t (g BIGINT, v BIGINT)")
	var insert string
	for i := 0; i < 3000; i++ {
		if i > 0 {
			insert += ","
		}
		insert += fmt.Sprintf("(%d,%d)", i%7, i)
	}
	execSQL(t, db, "INSERT INTO t VALUES "+insert)
	const q = "SELECT g, count(*), sum(v) FROM t WHERE v % 3 = 0 GROUP BY g ORDER BY g"
	vecRows := queryStrings(t, db, q)
	rowRows, err := db.NewSession().ExecuteRowEngine(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(vecRows) != len(rowRows) {
		t.Fatalf("group counts differ: %d vs %d", len(vecRows), len(rowRows))
	}
	for i := range vecRows {
		for c := range vecRows[i] {
			if vecRows[i][c] != rowRows[i][c].String() {
				t.Fatalf("row %d col %d: %s vs %s", i, c, vecRows[i][c], rowRows[i][c].String())
			}
		}
	}
}

// TestRowEngineMatchesVectorizedNaN: both engines must apply the same
// total FP order to NaN-bearing predicates and min/max — the vectorized
// comparator delegates to types.CompareFloat exactly so the two agree.
func TestRowEngineMatchesVectorizedNaN(t *testing.T) {
	db := openCore(t, "")
	defer db.Close()
	execSQL(t, db, "CREATE TABLE t (d DOUBLE)")
	execSQL(t, db, "INSERT INTO t VALUES (5.0), (0.0), (-3.5), (2.0)")
	execSQL(t, db, "INSERT INTO t SELECT d/0.0 FROM t") // ±Inf and NaN
	for _, q := range []string{
		"SELECT count(*) FROM t WHERE d > 5",
		"SELECT count(*) FROM t WHERE d = d",
		"SELECT count(*) FROM t WHERE d <= 0.0/0.0",
		"SELECT min(d), max(d) FROM t",
	} {
		vecRows := queryStrings(t, db, q)
		rowRows, err := db.NewSession().ExecuteRowEngine(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vecRows {
			for c := range vecRows[i] {
				if vecRows[i][c] != rowRows[i][c].String() {
					t.Fatalf("%s: row %d col %d: vectorized %s vs row engine %s",
						q, i, c, vecRows[i][c], rowRows[i][c].String())
				}
			}
		}
	}
}

func TestParamsThroughSession(t *testing.T) {
	db := openCore(t, "")
	defer db.Close()
	execSQL(t, db, "CREATE TABLE t (v BIGINT)")
	sess := db.NewSession()
	if _, err := sess.Execute("INSERT INTO t VALUES (?)", types.NewBigInt(5)); err != nil {
		t.Fatal(err)
	}
	res, err := sess.ExecuteOne("SELECT v + ? FROM t", types.NewBigInt(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks[0].Cols[0].I64[0] != 15 {
		t.Fatalf("param arithmetic: %v", res.Chunks[0].Row(0))
	}
}

func TestVacuumRunsPeriodically(t *testing.T) {
	db, err := Open(Config{Path: "", VacuumEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	execSQL(t, db, "CREATE TABLE t (v BIGINT)")
	execSQL(t, db, "INSERT INTO t VALUES (0)")
	for i := 0; i < 12; i++ {
		execSQL(t, db, fmt.Sprintf("UPDATE t SET v = %d", i))
	}
	// No assertion beyond "did not deadlock/corrupt": final value holds.
	got := queryStrings(t, db, "SELECT v FROM t")
	if got[0][0] != "11" {
		t.Fatalf("got %v", got)
	}
}

func TestWALSizeGrowsAndTruncates(t *testing.T) {
	dir := t.TempDir()
	db := openCore(t, filepath.Join(dir, "db.qdb"))
	defer db.Close()
	execSQL(t, db, "CREATE TABLE t (v BIGINT)")
	execSQL(t, db, "INSERT INTO t VALUES (1)")
	if db.WALSize() == 0 {
		t.Fatal("WAL empty after commit")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.WALSize() != 0 {
		t.Fatal("WAL not truncated by checkpoint")
	}
}

// TestThreadsFromEnv: QUACK_THREADS pins the default parallelism when
// the config leaves it unset (the CI differential matrix relies on it);
// an explicit config value still wins.
func TestThreadsFromEnv(t *testing.T) {
	t.Setenv("QUACK_THREADS", "3")
	db, err := Open(Config{Path: ":memory:"})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Threads(); got != 3 {
		t.Fatalf("Threads() = %d, want 3 from QUACK_THREADS", got)
	}
	db.Close()

	db, err = Open(Config{Path: ":memory:", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Threads(); got != 2 {
		t.Fatalf("Threads() = %d, want explicit 2 over env", got)
	}
	// Resetting (PRAGMA threads=0) re-resolves the same pinned default.
	db.SetThreads(0)
	if got := db.Threads(); got != 3 {
		t.Fatalf("SetThreads(0) resolved %d, want 3 from QUACK_THREADS", got)
	}
}
