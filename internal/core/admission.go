package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// defaultMemoryShare is the fraction of the engine-wide budget one
// query claims at admission when the session has not chosen one. The
// default is the whole budget: operators reserve from the shared pool
// up to the full limit and hard-fail paths (hash-join builds, scan
// materialization) cannot shed to disk, so admitting strangers into a
// budget sized for one query trades correctness for concurrency.
// Budgeted queries therefore serialize unless the session opts in by
// lowering PRAGMA memory_share, which caps its claim and lets
// 1/share queries overlap.
const defaultMemoryShare = 1.0

// defaultAdmissionDepth bounds the admission queue per arriving
// session when PRAGMA admission_queue_depth has not chosen one.
const defaultAdmissionDepth = 32

// admitState is the engine-wide admission controller. When a memory
// budget is enforced (PRAGMA memory_limit / QUACK_MEMORY_LIMIT), every
// query claims a share of the engine-wide pool before it starts; a
// query whose claim does not fit either waits in a bounded queue or
// fails fast, per the session's admission_queue_depth. This turns the
// paper's cooperation requirement (§4) from a per-query property into a
// whole-process one: N greedy sessions cannot multiply the budget by N.
//
// Rules, in order:
//   - No budget → no gating (the common embedded case stays zero-cost).
//   - One query is always admitted, even if its claim exceeds the whole
//     budget — progress beats strict accounting, and the operators
//     under it spill to stay inside the real limit anyway.
//   - Otherwise a query is admitted when the sum of admitted claims
//     stays within the budget.
//   - Waiters are served highest priority first (FIFO within equal
//     priority); a session with depth 0 fails fast instead of queuing,
//     and a full queue rejects new waiters with a distinct error.
type admitState struct {
	db      *Database
	mu      sync.Mutex
	cond    *sync.Cond
	claimed int64 // bytes claimed by admitted queries
	running int   // admitted queries
	queue   []*admitWaiter
	seq     uint64

	met admitMetrics // optional registry hooks (zero value: off)
}

// admitMetrics are the admission controller's registry hooks, wired at
// database open. All fields optional.
type admitMetrics struct {
	admitted *obs.Counter   // queries admitted (gated path only)
	queued   *obs.Counter   // queries that had to wait in the queue
	rejected *obs.Counter   // fail-fast and queue-full rejections
	wait     *obs.Histogram // admission wait per admitted query
}

type admitWaiter struct {
	priority int
	seq      uint64
}

func (a *admitState) init(db *Database) {
	a.db = db
	a.cond = sync.NewCond(&a.mu)
}

// admit blocks until the query's claim fits (or returns an error per
// the fail-fast/queue-full rules). The returned release must be called
// exactly once when the query finishes; it is never nil. wait is how
// long the query spent queued before admission (zero when it was
// admitted immediately or no budget gates admission).
func (a *admitState) admit(share float64, depth, priority int) (release func(), wait time.Duration, err error) {
	noop := func() {}
	limit := a.db.pool.Limit()
	if limit <= 0 {
		return noop, 0, nil
	}
	if share <= 0 {
		share = defaultMemoryShare
	} else if share > 1 {
		share = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var w *admitWaiter
	var arrived time.Time
	leave := func() {
		if w == nil {
			return
		}
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				break
			}
		}
		w = nil
		wait = time.Since(arrived)
	}
	for {
		// Re-read the budget every round: PRAGMA memory_limit can move
		// (or vanish) while a query waits, and waiters must observe it.
		limit = a.db.pool.Limit()
		if limit <= 0 {
			leave()
			return noop, wait, nil
		}
		claim := int64(share * float64(limit))
		if claim < 1 {
			claim = 1
		}
		// A queued waiter may only be admitted while it is head of line —
		// including through the nothing-running escape hatch, which would
		// otherwise let whichever waiter the broadcast happened to wake
		// first barge past a higher-priority one. A fresh arrival (w ==
		// nil) still takes the escape hatch even with waiters queued:
		// progress beats strict ordering when the alternative is an idle
		// engine.
		if (w == nil || a.first() == w) && (a.running == 0 || a.claimed+claim <= limit) {
			leave()
			a.running++
			a.claimed += claim
			if a.met.admitted != nil {
				a.met.admitted.Inc()
			}
			if a.met.wait != nil {
				a.met.wait.Observe(wait.Nanoseconds())
			}
			// Wake the remaining waiters: more than one claim may fit, and
			// the new head of line must re-check rather than sleep until
			// the next release.
			a.cond.Broadcast()
			var once sync.Once
			return func() {
				once.Do(func() {
					a.mu.Lock()
					a.running--
					a.claimed -= claim
					a.mu.Unlock()
					a.cond.Broadcast()
				})
			}, wait, nil
		}
		if w == nil {
			if depth <= 0 {
				if a.met.rejected != nil {
					a.met.rejected.Inc()
				}
				return noop, 0, fmt.Errorf("query admission: memory budget exhausted (session fails fast; raise PRAGMA admission_queue_depth to queue)")
			}
			if len(a.queue) >= depth {
				if a.met.rejected != nil {
					a.met.rejected.Inc()
				}
				return noop, 0, fmt.Errorf("query admission: queue full (%d waiting)", len(a.queue))
			}
			a.seq++
			w = &admitWaiter{priority: priority, seq: a.seq}
			a.queue = append(a.queue, w)
			arrived = time.Now()
			if a.met.queued != nil {
				a.met.queued.Inc()
			}
		}
		a.cond.Wait()
	}
}

// queueDepth/runningCount/claimedBytes are the registry's gauge reads.
func (a *admitState) queueDepth() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.queue))
}

func (a *admitState) runningCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.running)
}

func (a *admitState) claimedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.claimed
}

// first returns the waiter next in line: highest priority, FIFO within
// equal priority. Callers hold a.mu and guarantee the queue is
// non-empty.
func (a *admitState) first() *admitWaiter {
	best := a.queue[0]
	for _, q := range a.queue[1:] {
		if q.priority > best.priority || (q.priority == best.priority && q.seq < best.seq) {
			best = q
		}
	}
	return best
}
