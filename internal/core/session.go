package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/csvio"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/table"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
	"repro/internal/wal"
)

// Result is the materialized outcome of one statement. SELECT results
// carry chunks in the engine's native representation — the client
// application consumes them without copies or per-value calls (§5).
type Result struct {
	Columns      []string
	Types        []types.Type
	Chunks       []*vector.Chunk
	RowsAffected int64
	HasRows      bool
}

// NumRows returns the total row count across chunks.
func (r *Result) NumRows() int64 {
	var n int64
	for _, c := range r.Chunks {
		n += int64(c.Len())
	}
	return n
}

// Session is one connection to the database: it owns the current
// explicit transaction, if any. Sessions are not safe for concurrent
// use; open one per goroutine (they are cheap).
type Session struct {
	db      *Database
	current *txn.Transaction
	// JoinStrategy overrides the adaptive join choice for experiments.
	JoinStrategy exec.JoinStrategy
	// Threads overrides the database's default query parallelism for
	// this session; <=0 means "use the database default". It caps how
	// many tasks this session's queries keep runnable on the shared
	// pool — it does not resize the pool itself.
	Threads int
	// Priority is this session's scheduling weight (PRAGMA priority):
	// a priority-200 query receives twice the pool share of a
	// priority-100 one, and admission serves higher priorities first.
	// <=0 means the default (100).
	Priority int
	// MemoryShare is the fraction of the engine-wide memory budget one
	// query of this session claims at admission (PRAGMA memory_share).
	// Meaningful only when a memory_limit is enforced.
	MemoryShare float64
	// AdmissionQueueDepth bounds how many queries may wait for
	// admission before new arrivals are rejected (PRAGMA
	// admission_queue_depth). 0 makes this session fail fast instead
	// of queuing.
	AdmissionQueueDepth int
	// Profiling enables the per-operator query profiler for every
	// statement this session runs (PRAGMA profiling); EXPLAIN ANALYZE
	// profiles its statement regardless. Off by default — the operator
	// hooks are nil-checked, so unprofiled queries pay nothing.
	Profiling bool

	lastProfile *queryProfile // most recent profiled query (PRAGMA last_profile)
	analyzing   bool          // inside EXPLAIN ANALYZE
	curQuery    string        // SQL text of the batch in flight
	parseNs     int64         // parse span attributed to the statement in flight
	bindNs      int64         // bind span of the statement in flight
}

// queryProfile is one query's complete profile: the phase spans around
// execution plus the plan-mirrored operator tree. PRAGMA last_profile
// serializes it; EXPLAIN ANALYZE renders it.
type queryProfile struct {
	Query       string              `json:"query"`
	Threads     int                 `json:"threads"`
	ParseNs     int64               `json:"parse_ns"`
	BindNs      int64               `json:"bind_ns"`
	OptimizeNs  int64               `json:"optimize_ns"`
	AdmitWaitNs int64               `json:"admit_wait_ns"`
	ExecuteNs   int64               `json:"execute_ns"`
	Rows        int64               `json:"rows"`
	SpillBytes  int64               `json:"spill_bytes"`
	Plan        *exec.OpProfileSnap `json:"plan,omitempty"`
}

// slowLogLine is the JSON shape of one slow-query log record (PRAGMA
// log_min_duration_ms).
type slowLogLine struct {
	Query       string `json:"query"`
	DurationMs  int64  `json:"duration_ms"`
	AdmitWaitMs int64  `json:"admit_wait_ms"`
	Rows        int64  `json:"rows"`
	SpillBytes  int64  `json:"spill_bytes"`
}

// threads resolves the parallelism for this session's next query.
func (s *Session) threads() int {
	if s.Threads > 0 {
		return s.Threads
	}
	return s.db.Threads()
}

// NewSession opens a session.
func (db *Database) NewSession() *Session {
	return &Session{
		db:                  db,
		MemoryShare:         defaultMemoryShare,
		AdmissionQueueDepth: defaultAdmissionDepth,
	}
}

// priority resolves this session's scheduling priority.
func (s *Session) priority() int {
	if s.Priority > 0 {
		return s.Priority
	}
	return sched.DefaultPriority
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.current != nil && !s.current.Done() }

// Execute parses and runs one or more semicolon-separated statements,
// returning one result per statement. Parameters substitute `?`
// placeholders across all statements.
func (s *Session) Execute(sqlText string, params ...types.Value) ([]*Result, error) {
	start := time.Now()
	stmts, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	// The parse span covers the whole batch; it is attributed to each
	// statement's profile (batches are overwhelmingly one statement).
	s.curQuery = sqlText
	s.parseNs = time.Since(start).Nanoseconds()
	results := make([]*Result, 0, len(stmts))
	for _, stmt := range stmts {
		s.bindNs = 0
		res, err := s.executeStmt(stmt, params)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// ExecuteOne is Execute for a single statement.
func (s *Session) ExecuteOne(sqlText string, params ...types.Value) (*Result, error) {
	results, err := s.Execute(sqlText, params...)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return &Result{}, nil
	}
	return results[len(results)-1], nil
}

func (s *Session) executeStmt(stmt sql.Statement, params []types.Value) (*Result, error) {
	switch st := stmt.(type) {
	case *sql.BeginStmt:
		if s.InTransaction() {
			return nil, fmt.Errorf("a transaction is already in progress")
		}
		s.current = s.db.txns.Begin()
		return &Result{}, nil
	case *sql.CommitStmt:
		if !s.InTransaction() {
			return nil, fmt.Errorf("no transaction is in progress")
		}
		tx := s.current
		s.current = nil
		if _, err := s.db.txns.Commit(tx); err != nil {
			return nil, err
		}
		s.db.afterCommit()
		return &Result{}, nil
	case *sql.RollbackStmt:
		if !s.InTransaction() {
			return nil, fmt.Errorf("no transaction is in progress")
		}
		tx := s.current
		s.current = nil
		s.db.txns.Rollback(tx)
		return &Result{}, nil
	case *sql.CheckpointStmt:
		if s.InTransaction() {
			return nil, ErrBusy
		}
		if err := s.db.Checkpoint(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.PragmaStmt:
		return s.executePragma(st)
	case *sql.ExplainStmt:
		return s.explain(st, params)
	default:
		return s.inTxn(func(tx *txn.Transaction) (*Result, error) {
			return s.executeInTxn(stmt, params, tx)
		})
	}
}

// inTxn runs fn in the session's explicit transaction, or in a
// one-statement autocommit transaction.
func (s *Session) inTxn(fn func(tx *txn.Transaction) (*Result, error)) (*Result, error) {
	if s.InTransaction() {
		return fn(s.current)
	}
	tx := s.db.txns.Begin()
	res, err := fn(tx)
	if err != nil {
		s.db.txns.Rollback(tx)
		return nil, err
	}
	if _, err := s.db.txns.Commit(tx); err != nil {
		return nil, err
	}
	s.db.afterCommit()
	return res, nil
}

func (s *Session) executeInTxn(stmt sql.Statement, params []types.Value, tx *txn.Transaction) (*Result, error) {
	binder := &plan.Binder{Cat: s.db.cat, Params: params}
	bind := func(f func() (plan.Node, error)) (plan.Node, error) {
		t0 := time.Now()
		node, err := f()
		s.bindNs = time.Since(t0).Nanoseconds()
		return node, err
	}
	switch st := stmt.(type) {
	case *sql.SelectStmt:
		node, err := bind(func() (plan.Node, error) { return binder.BindSelect(st) })
		if err != nil {
			return nil, err
		}
		return s.runPlan(node, tx)
	case *sql.InsertStmt:
		node, err := bind(func() (plan.Node, error) { return binder.BindInsert(st) })
		if err != nil {
			return nil, err
		}
		return s.runDML(node, tx)
	case *sql.UpdateStmt:
		node, err := bind(func() (plan.Node, error) { return binder.BindUpdate(st) })
		if err != nil {
			return nil, err
		}
		return s.runDML(node, tx)
	case *sql.DeleteStmt:
		node, err := bind(func() (plan.Node, error) { return binder.BindDelete(st) })
		if err != nil {
			return nil, err
		}
		return s.runDML(node, tx)
	case *sql.CreateTableStmt:
		return s.createTable(st, binder, tx)
	case *sql.CreateViewStmt:
		if err := s.db.cat.CreateView(&catalog.View{Name: st.Name, SQL: st.SQL}); err != nil {
			return nil, err
		}
		tx.AppendLog(byte(wal.RecCreateView), encodeCreateView(st.Name, st.SQL))
		return &Result{}, nil
	case *sql.DropStmt:
		return s.drop(st, tx)
	case *sql.CopyStmt:
		return s.copy(st, tx)
	default:
		return nil, fmt.Errorf("unsupported statement %T", stmt)
	}
}

func (s *Session) execContext(tx *txn.Transaction) *exec.Context {
	// Knob snapshot: every db-level knob a query consults (threads,
	// zone maps, memory limit via Pool) is resolved here or read through
	// atomics, so a PRAGMA issued concurrently on another session never
	// tears a running query's view of the configuration.
	return &exec.Context{
		Txn:                tx,
		Pool:               s.db.pool,
		Logger:             s.db.logger,
		TmpDir:             s.db.TmpDir(),
		JoinStrategy:       s.JoinStrategy,
		Threads:            s.threads(),
		Stats:              &s.db.execStats,
		DisableZoneMaps:    !s.db.ZoneMapsEnabled(),
		DisableEncodedExec: !s.db.EncodedExecEnabled(),
		Sched:              s.db.sched,
		Priority:           s.priority(),
	}
}

// profilingOn reports whether the statement in flight collects a full
// per-operator profile.
func (s *Session) profilingOn() bool { return s.Profiling || s.analyzing }

// slowLogOn reports whether the slow-query log observes statements.
func (s *Session) slowLogOn() bool {
	return s.db.logSink != nil && s.db.logMinDurMs.Load() >= 0
}

// queryTimes carries the phase spans measured around one plan's
// execution; parse and bind spans live on the session scratch fields.
type queryTimes struct {
	optimizeNs  int64
	admitWaitNs int64
	executeNs   int64
}

// finishQuery closes out one executed plan: it records the engine-wide
// latency histogram, publishes the profile when one was collected
// (PRAGMA last_profile), and emits a slow-query log line when the
// statement crossed the session's threshold.
func (s *Session) finishQuery(ctx *exec.Context, prof *exec.Profiler, t queryTimes, rows int64) {
	totalNs := s.parseNs + s.bindNs + t.optimizeNs + t.admitWaitNs + t.executeNs
	if s.db.queryNs != nil {
		s.db.queryNs.Observe(totalNs)
	}
	var spill int64
	if ctx.QStats != nil {
		spill = ctx.QStats.SpillBytes.Load()
	}
	if prof != nil {
		s.lastProfile = &queryProfile{
			Query:       s.curQuery,
			Threads:     ctx.Threads,
			ParseNs:     s.parseNs,
			BindNs:      s.bindNs,
			OptimizeNs:  t.optimizeNs,
			AdmitWaitNs: t.admitWaitNs,
			ExecuteNs:   t.executeNs,
			Rows:        rows,
			SpillBytes:  spill,
			Plan:        prof.Snapshot(),
		}
	}
	if s.slowLogOn() && totalNs/1e6 >= s.db.logMinDurMs.Load() {
		line, err := json.Marshal(slowLogLine{
			Query:       s.curQuery,
			DurationMs:  totalNs / 1e6,
			AdmitWaitMs: t.admitWaitNs / 1e6,
			Rows:        rows,
			SpillBytes:  spill,
		})
		if err == nil {
			s.db.logSink(string(line))
		}
	}
}

func (s *Session) runPlan(node plan.Node, tx *txn.Transaction) (*Result, error) {
	release, admitWait, err := s.db.admit.admit(s.MemoryShare, s.AdmissionQueueDepth, s.priority())
	if err != nil {
		return nil, err
	}
	defer release()
	t0 := time.Now()
	node = plan.Optimize(node)
	optimizeNs := time.Since(t0).Nanoseconds()
	ctx := s.execContext(tx)
	ctx.QStats = &exec.QueryStats{}
	var prof *exec.Profiler
	if s.profilingOn() {
		prof = exec.NewProfiler(node)
		ctx.Prof = prof
	}
	op, err := exec.BuildParallelProfiled(node, ctx.Threads, prof)
	if err != nil {
		return nil, err
	}
	tExec := time.Now()
	chunks, err := exec.Collect(ctx, op)
	if err != nil {
		return nil, err
	}
	executeNs := time.Since(tExec).Nanoseconds()
	schema := node.Schema()
	res := &Result{HasRows: true, Chunks: chunks}
	for _, c := range schema {
		res.Columns = append(res.Columns, c.Name)
		res.Types = append(res.Types, c.Type)
	}
	s.finishQuery(ctx, prof, queryTimes{
		optimizeNs:  optimizeNs,
		admitWaitNs: admitWait.Nanoseconds(),
		executeNs:   executeNs,
	}, res.NumRows())
	return res, nil
}

// ExecuteRowEngine runs a SELECT through the tuple-at-a-time Volcano
// baseline engine instead of the vectorized one — the ablation of
// experiment E6. It returns the materialized rows as boxed values.
func (s *Session) ExecuteRowEngine(sqlText string, params ...types.Value) ([][]types.Value, error) {
	stmt, err := sql.ParseOne(sqlText)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("row engine supports SELECT only")
	}
	binder := &plan.Binder{Cat: s.db.cat, Params: params}
	node, err := binder.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	node = plan.Optimize(node)
	it, err := exec.BuildRows(node)
	if err != nil {
		return nil, err
	}
	var out [][]types.Value
	runIt := func(tx *txn.Transaction) (*Result, error) {
		err := exec.RunRows(s.execContext(tx), it, func(row []types.Value) error {
			out = append(out, row)
			return nil
		})
		return &Result{}, err
	}
	if _, err := s.inTxn(runIt); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Session) runDML(node plan.Node, tx *txn.Transaction) (*Result, error) {
	release, admitWait, err := s.db.admit.admit(s.MemoryShare, s.AdmissionQueueDepth, s.priority())
	if err != nil {
		return nil, err
	}
	defer release()
	t0 := time.Now()
	node = plan.Optimize(node)
	optimizeNs := time.Since(t0).Nanoseconds()
	// DML input scans parallelize like any query (the write itself runs
	// on the consuming thread); the scan-open segment snapshot keeps
	// self-referencing statements safe.
	ctx := s.execContext(tx)
	ctx.QStats = &exec.QueryStats{}
	var prof *exec.Profiler
	if s.profilingOn() {
		prof = exec.NewProfiler(node)
		ctx.Prof = prof
	}
	op, err := exec.BuildParallelProfiled(node, ctx.Threads, prof)
	if err != nil {
		return nil, err
	}
	tExec := time.Now()
	chunks, err := exec.Collect(ctx, op)
	if err != nil {
		return nil, err
	}
	executeNs := time.Since(tExec).Nanoseconds()
	var affected int64
	if len(chunks) > 0 && chunks[0].Len() > 0 {
		affected = chunks[0].Cols[0].I64[0]
	}
	s.finishQuery(ctx, prof, queryTimes{
		optimizeNs:  optimizeNs,
		admitWaitNs: admitWait.Nanoseconds(),
		executeNs:   executeNs,
	}, affected)
	return &Result{RowsAffected: affected}, nil
}

func (s *Session) createTable(st *sql.CreateTableStmt, binder *plan.Binder, tx *txn.Transaction) (*Result, error) {
	s.db.ddlMu.Lock()
	defer s.db.ddlMu.Unlock()
	if st.IfNotExists && s.db.cat.HasTable(st.Name) {
		return &Result{}, nil
	}
	var cols []catalog.Column
	var asPlan plan.Node
	if st.AsSelect != nil {
		node, err := binder.BindSelect(st.AsSelect)
		if err != nil {
			return nil, err
		}
		for _, c := range node.Schema() {
			t := c.Type
			if t == types.Null {
				t = types.Varchar
			}
			cols = append(cols, catalog.Column{Name: c.Name, Type: t})
		}
		asPlan = node
	} else {
		for _, c := range st.Cols {
			cols = append(cols, catalog.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull})
		}
	}
	entry := &catalog.Table{Name: st.Name, Columns: cols}
	entry.Data = table.New(entry.Types(), s.db.pool)
	if err := s.db.cat.CreateTable(entry); err != nil {
		return nil, err
	}
	recCols := make([]colDefRec, len(cols))
	for i, c := range cols {
		recCols[i] = colDefRec{Name: c.Name, Type: c.Type, NotNull: c.NotNull}
	}
	tx.AppendLog(byte(wal.RecCreateTable), encodeCreateTable(st.Name, recCols))

	if asPlan != nil {
		insert := &plan.InsertNode{Table: entry, Child: asPlan}
		res, err := s.runDML(insert, tx)
		if err != nil {
			// Roll the catalog entry back; the data rollback happens
			// via the transaction's undo log.
			s.db.cat.DropTable(st.Name) //nolint:errcheck
			return nil, err
		}
		return res, nil
	}
	return &Result{}, nil
}

func (s *Session) drop(st *sql.DropStmt, tx *txn.Transaction) (*Result, error) {
	s.db.ddlMu.Lock()
	defer s.db.ddlMu.Unlock()
	if st.View {
		if err := s.db.cat.DropView(st.Name); err != nil {
			if st.IfExists {
				return &Result{}, nil
			}
			return nil, err
		}
		tx.AppendLog(byte(wal.RecDropView), putString(nil, st.Name))
		return &Result{}, nil
	}
	entry, err := s.db.cat.DropTable(st.Name)
	if err != nil {
		if st.IfExists {
			return &Result{}, nil
		}
		return nil, err
	}
	// The table's blocks become reusable at the next checkpoint (shadow
	// paging: the previous checkpoint may still reference them).
	for c := range entry.ColChains {
		if entry.ColChains[c] == storage.InvalidBlock {
			continue
		}
		blocks := entry.ChainBlocks[c]
		if blocks == nil {
			_, ids, err := storage.ReadChain(s.db.store, entry.ColChains[c])
			if err == nil {
				blocks = ids
			}
		}
		s.db.pendingFree = append(s.db.pendingFree, blocks...)
	}
	tx.AppendLog(byte(wal.RecDropTable), putString(nil, st.Name))
	return &Result{}, nil
}

func (s *Session) copy(st *sql.CopyStmt, tx *txn.Transaction) (*Result, error) {
	entry, err := s.db.cat.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if st.From {
		r, err := csvio.NewReader(st.Path, entry.Types(), csvio.Options{
			Delimiter: st.Delimiter,
			Header:    st.Header,
		})
		if err != nil {
			return nil, err
		}
		defer func() { _ = r.Close() }()
		var total int64
		for {
			chunk, err := r.NextChunk()
			if err != nil {
				return nil, err
			}
			if chunk == nil {
				break
			}
			if err := entry.Data.Append(tx, chunk); err != nil {
				return nil, err
			}
			s.db.logger.LogInsert(tx, entry.Name, chunk)
			total += int64(chunk.Len())
		}
		return &Result{RowsAffected: total}, nil
	}
	// COPY ... TO: stream the table out.
	names := make([]string, len(entry.Columns))
	for i, c := range entry.Columns {
		names[i] = c.Name
	}
	w, err := csvio.NewWriter(st.Path, names, csvio.Options{
		Delimiter: st.Delimiter,
		Header:    st.Header,
	})
	if err != nil {
		return nil, err
	}
	sc, err := entry.Data.NewScanner(tx, table.ScanOptions{})
	if err != nil {
		_ = w.Close()
		return nil, err
	}
	defer sc.Close()
	var total int64
	for {
		chunk, err := sc.Next()
		if err != nil {
			_ = w.Close()
			return nil, err
		}
		if chunk == nil {
			break
		}
		if err := w.WriteChunk(chunk); err != nil {
			_ = w.Close()
			return nil, err
		}
		total += int64(chunk.Len())
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: total}, nil
}

func (s *Session) explain(st *sql.ExplainStmt, params []types.Value) (*Result, error) {
	if st.Analyze {
		return s.explainAnalyze(st, params)
	}
	binder := &plan.Binder{Cat: s.db.cat, Params: params}
	var node plan.Node
	var err error
	switch inner := st.Stmt.(type) {
	case *sql.SelectStmt:
		node, err = binder.BindSelect(inner)
	case *sql.InsertStmt:
		node, err = binder.BindInsert(inner)
	case *sql.UpdateStmt:
		node, err = binder.BindUpdate(inner)
	case *sql.DeleteStmt:
		node, err = binder.BindDelete(inner)
	default:
		return nil, fmt.Errorf("EXPLAIN supports SELECT, INSERT, UPDATE and DELETE")
	}
	if err != nil {
		return nil, err
	}
	node = plan.Optimize(node)
	text := plan.ExplainTree(node)
	out := vector.NewChunk([]types.Type{types.Varchar})
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		out.AppendRow(types.NewVarchar(line))
	}
	// Surface what each scan's zone maps can prove right now: the pushed
	// conjuncts it will test per segment, and how many of the table's
	// segments an immediately-following execution would skip.
	if s.db.ZoneMapsEnabled() {
		var walk func(n plan.Node)
		walk = func(n plan.Node) {
			if sn, ok := n.(*plan.ScanNode); ok {
				if zf := plan.ScanZoneFilters(sn); len(zf) > 0 {
					parts := make([]string, len(zf))
					for i, f := range zf {
						parts[i] = f.String(sn.Table.Columns[f.Col].Name)
					}
					skipped, total := sn.Table.Data.ZoneSkipInfo(zf)
					out.AppendRow(types.NewVarchar(fmt.Sprintf(
						"NOTE: SCAN %s zone filters: %s; segments skipped: %d/%d",
						sn.Table.Name, strings.Join(parts, " AND "), skipped, total)))
					// Of the surviving segments, how many would evaluate the
					// filters directly on their compressed payloads and
					// materialize only the selected rows.
					if s.db.EncodedExecEnabled() {
						if enc, surv := sn.Table.Data.EncExecInfo(zf); enc > 0 {
							out.AppendRow(types.NewVarchar(fmt.Sprintf(
								"NOTE: SCAN %s encoded execution: %d/%d surviving segments",
								sn.Table.Name, enc, surv)))
						}
					}
				}
			}
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(node)
	}
	// Surface how aggregation cooperates with an enforced memory_limit:
	// partitions whose accumulator states outgrow the budget spill to
	// sorted state runs and merge back at finish — at full parallelism.
	if lim := s.db.pool.Limit(); lim > 0 && exec.HasAggregate(node) {
		out.AppendRow(types.NewVarchar(
			"NOTE: aggregation spills partition-wise under memory_limit (see PRAGMA agg_spill_partitions)"))
		// Surface the budget floor: states touched by in-flight morsels
		// cannot spill, so a tight budget admits fewer accumulation
		// workers instead of hard-failing the reservation.
		if agg := exec.FindAggregate(node); agg != nil {
			threads := s.threads()
			if w := exec.AggWorkersAdmitted(lim, threads, agg); w < threads {
				out.AppendRow(types.NewVarchar(fmt.Sprintf(
					"NOTE: memory_limit admits %d of %d aggregation workers (unspillable in-flight states)", w, threads)))
			}
		}
	}
	return &Result{
		Columns: []string{"plan"},
		Types:   []types.Type{types.Varchar},
		Chunks:  []*vector.Chunk{out},
		HasRows: true,
	}, nil
}

// explainAnalyze executes the statement with the profiler attached and
// returns the measured operator tree plus the phase spans instead of
// the statement's rows. The run is a real execution — same admission,
// same scheduler, same transaction semantics — so the numbers are the
// numbers a plain run would have produced.
func (s *Session) explainAnalyze(st *sql.ExplainStmt, params []types.Value) (*Result, error) {
	sel, ok := st.Stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("EXPLAIN ANALYZE supports SELECT")
	}
	s.analyzing = true
	defer func() { s.analyzing = false }()
	if _, err := s.inTxn(func(tx *txn.Transaction) (*Result, error) {
		binder := &plan.Binder{Cat: s.db.cat, Params: params}
		t0 := time.Now()
		node, err := binder.BindSelect(sel)
		s.bindNs = time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, err
		}
		return s.runPlan(node, tx)
	}); err != nil {
		return nil, err
	}
	p := s.lastProfile
	out := vector.NewChunk([]types.Type{types.Varchar})
	var sb strings.Builder
	p.Plan.WriteTree(&sb, 0)
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		out.AppendRow(types.NewVarchar(line))
	}
	out.AppendRow(types.NewVarchar(fmt.Sprintf(
		"phases: parse=%s bind=%s optimize=%s admit_wait=%s execute=%s",
		exec.FmtDur(p.ParseNs), exec.FmtDur(p.BindNs), exec.FmtDur(p.OptimizeNs),
		exec.FmtDur(p.AdmitWaitNs), exec.FmtDur(p.ExecuteNs))))
	out.AppendRow(types.NewVarchar(fmt.Sprintf(
		"totals: threads=%d rows=%d spilled=%dB", p.Threads, p.Rows, p.SpillBytes)))
	return &Result{
		Columns: []string{"explain analyze"},
		Types:   []types.Type{types.Varchar},
		Chunks:  []*vector.Chunk{out},
		HasRows: true,
	}, nil
}

func (s *Session) executePragma(st *sql.PragmaStmt) (*Result, error) {
	readback := func(val string) *Result {
		out := vector.NewChunk([]types.Type{types.Varchar})
		out.AppendRow(types.NewVarchar(val))
		return &Result{Columns: []string{st.Name}, Types: []types.Type{types.Varchar}, Chunks: []*vector.Chunk{out}, HasRows: true}
	}
	var strVal string
	var intVal int64
	var hasVal bool
	if st.Value != nil {
		lit, ok := st.Value.(*sql.Literal)
		if !ok {
			return nil, fmt.Errorf("PRAGMA %s requires a literal value", st.Name)
		}
		hasVal = true
		strVal = lit.Val.String()
		intVal = lit.Val.AsInt()
	}
	switch st.Name {
	case "memory_limit":
		if !hasVal {
			return readback(strconv.FormatInt(s.db.pool.Limit(), 10)), nil
		}
		bytes, err := parseByteSize(strVal)
		if err != nil {
			return nil, err
		}
		s.db.pool.SetLimit(bytes)
		return &Result{}, nil
	case "threads":
		if !hasVal {
			return readback(strconv.FormatInt(int64(s.db.Threads()), 10)), nil
		}
		s.db.SetThreads(int(intVal))
		return &Result{}, nil
	case "priority":
		// Session scheduling weight on the shared pool; higher = larger
		// CPU share and earlier admission. Fairness only — results are
		// identical at every priority.
		if !hasVal {
			return readback(strconv.Itoa(s.priority())), nil
		}
		if intVal <= 0 {
			return nil, fmt.Errorf("PRAGMA priority requires a positive integer")
		}
		s.Priority = int(intVal)
		return &Result{}, nil
	case "memory_share":
		// Fraction of the engine-wide memory budget one query of this
		// session claims at admission (meaningful under memory_limit).
		if !hasVal {
			return readback(strconv.FormatFloat(s.MemoryShare, 'g', -1, 64)), nil
		}
		f, err := strconv.ParseFloat(strVal, 64)
		if err != nil || f <= 0 || f > 1 {
			return nil, fmt.Errorf("PRAGMA memory_share requires a fraction in (0, 1], got %q", strVal)
		}
		s.MemoryShare = f
		return &Result{}, nil
	case "admission_queue_depth":
		// How many queries may wait for admission before new arrivals
		// are rejected; 0 makes this session fail fast instead of
		// queuing.
		if !hasVal {
			return readback(strconv.Itoa(s.AdmissionQueueDepth)), nil
		}
		if intVal < 0 {
			return nil, fmt.Errorf("PRAGMA admission_queue_depth requires a non-negative integer")
		}
		s.AdmissionQueueDepth = int(intVal)
		return &Result{}, nil
	case "rebuild_stats":
		// Recompute a table's per-segment zone-map statistics exactly
		// from the currently visible rows: deletes and rollbacks widen
		// stats conservatively at runtime, and this tightens them back
		// so scans can refute the vacated ranges again.
		if !hasVal {
			return nil, fmt.Errorf("PRAGMA rebuild_stats requires a table name, e.g. PRAGMA rebuild_stats='t'")
		}
		entry, err := s.db.cat.Table(strVal)
		if err != nil {
			return nil, err
		}
		if err := entry.Data.RebuildStats(s.db.txns.OldestVisibleTS()); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case "memtest":
		if !hasVal {
			return readback("configured at open"), nil
		}
		s.db.pool.EnableMemTest(intVal != 0 || strings.EqualFold(strVal, "true"))
		return &Result{}, nil
	case "checksum_verification":
		if !hasVal {
			return readback("configured at open"), nil
		}
		s.db.store.SetChecksums(intVal != 0 || strings.EqualFold(strVal, "true"))
		return &Result{}, nil
	case "database_size":
		read, written := s.db.store.Stats()
		return readback(fmt.Sprintf("blocks read %d, written %d, free %d", read, written, s.db.store.FreeCount())), nil
	case "wal_size":
		return readback(strconv.FormatInt(s.db.WALSize(), 10)), nil
	case "memory_used":
		return readback(strconv.FormatInt(s.db.pool.Used(), 10)), nil
	case "zone_maps":
		// Zone-map segment skipping: 1 (on, the default) or 0. Results are
		// identical either way; the differential harness runs both.
		if !hasVal {
			if s.db.ZoneMapsEnabled() {
				return readback("1"), nil
			}
			return readback("0"), nil
		}
		s.db.SetZoneMaps(intVal != 0 || strings.EqualFold(strVal, "true"))
		return &Result{}, nil
	case "encoded_exec":
		// Encoded execution: pushed filters evaluated directly over
		// compressed segments, decoding only the selected rows. 1 (on,
		// the default) or 0; results are byte-identical either way.
		if !hasVal {
			if s.db.EncodedExecEnabled() {
				return readback("1"), nil
			}
			return readback("0"), nil
		}
		s.db.SetEncodedExec(intVal != 0 || strings.EqualFold(strVal, "true"))
		return &Result{}, nil
	case "segments_scanned":
		// Table-scan segments materialized since open. Reads the registry
		// cell bridging the same atomic scans increment, so PRAGMA and
		// PRAGMA metrics can never disagree.
		return readback(strconv.FormatInt(s.db.metricValue("scan_segments_scanned_total"), 10)), nil
	case "segments_skipped":
		// Table-scan segments refuted by zone maps (or their compressed
		// payloads) without being touched.
		return readback(strconv.FormatInt(s.db.metricValue("scan_segments_skipped_total"), 10)), nil
	case "segments_encoded":
		// Scanned segments whose pushed filters executed over the
		// compressed payloads (late materialization); a subset of
		// segments_scanned.
		return readback(strconv.FormatInt(s.db.metricValue("scan_segments_encoded_total"), 10)), nil
	case "rows_encoded_selected":
		// Rows those encoded-executed segments selected and gathered
		// instead of decoding their segments fully.
		return readback(strconv.FormatInt(s.db.metricValue("scan_rows_encoded_selected_total"), 10)), nil
	case "agg_spill_partitions":
		// Aggregation partition-spill events under memory_limit (each is
		// one partition's states written to a sorted state run).
		return readback(strconv.FormatInt(s.db.metricValue("agg_spill_partitions_total"), 10)), nil
	case "agg_spilled_bytes":
		// Total bytes written to aggregation state runs.
		return readback(strconv.FormatInt(s.db.metricValue("agg_spill_bytes_total"), 10)), nil
	case "sort_spilled_bytes":
		// Total bytes external sorts (ORDER BY, window partitioning)
		// wrote to spill runs.
		return readback(strconv.FormatInt(s.db.metricValue("sort_spill_bytes_total"), 10)), nil
	case "profiling":
		// Per-operator query profiler for this session's statements; the
		// result lands in PRAGMA last_profile. EXPLAIN ANALYZE profiles
		// its statement regardless of this switch.
		if !hasVal {
			if s.Profiling {
				return readback("1"), nil
			}
			return readback("0"), nil
		}
		s.Profiling = intVal != 0 || strings.EqualFold(strVal, "true")
		return &Result{}, nil
	case "last_profile":
		// The most recent profiled query of this session, as one JSON
		// object ("{}" before any profiled query ran).
		if s.lastProfile == nil {
			return readback("{}"), nil
		}
		buf, err := json.Marshal(s.lastProfile)
		if err != nil {
			return nil, err
		}
		return readback(string(buf)), nil
	case "log_min_duration_ms":
		// Slow-query log threshold: statements taking at least this many
		// milliseconds emit one JSON line to the configured log sink.
		// 0 logs everything; negative (the default) disables.
		if !hasVal {
			return readback(strconv.FormatInt(s.db.logMinDurMs.Load(), 10)), nil
		}
		s.db.logMinDurMs.Store(intVal)
		return &Result{}, nil
	case "memory_usage":
		// Bytes currently reserved from the buffer pool (alias of
		// memory_used, named for symmetry with memory_peak).
		return readback(strconv.FormatInt(s.db.pool.Used(), 10)), nil
	case "memory_peak":
		// High-water mark of buffer-pool reservation since open (or the
		// last pool peak reset).
		return readback(strconv.FormatInt(s.db.pool.Peak(), 10)), nil
	case "metrics":
		// Engine-wide metrics registry snapshot as (name, value) rows —
		// every subsystem counter, gauge and histogram in one read.
		out := vector.NewChunk([]types.Type{types.Varchar, types.BigInt})
		for _, smp := range s.db.Metrics() {
			out.AppendRow(types.NewVarchar(smp.Name), types.NewBigInt(smp.Value))
		}
		return &Result{
			Columns: []string{"name", "value"},
			Types:   []types.Type{types.Varchar, types.BigInt},
			Chunks:  []*vector.Chunk{out},
			HasRows: true,
		}, nil
	case "parallel_agg_fallbacks":
		// Deprecated (kept one release for embedders' dashboards):
		// budgeted parallel aggregation no longer degrades to one worker
		// — it spills partition-wise instead (see agg_spill_partitions)
		// — so the fallback counter is always 0.
		return readback("0"), nil
	default:
		return nil, fmt.Errorf("unknown PRAGMA %q", st.Name)
	}
}

// parseByteSize parses "512MB", "1GB", "1048576" etc.
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, suffix := range []struct {
		s string
		m int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"TB", 1 << 40}, {"B", 1}} {
		if strings.HasSuffix(s, suffix.s) {
			s = strings.TrimSuffix(s, suffix.s)
			mult = suffix.m
			break
		}
	}
	n, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("cannot parse byte size %q", s)
	}
	return int64(n * float64(mult)), nil
}
