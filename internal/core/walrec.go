package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/vector"
	"repro/internal/wal"
)

// WAL record payload encodings. The wal package frames bytes; this file
// owns the logical layouts:
//
//	CreateTable: name | ncols u32 | (name, type u8, notnull u8)...
//	DropTable/DropView: name
//	CreateView: name | sql
//	Insert: table | EncodeChunk
//	Update: table | col u32 | n u32 | rowids i64... | EncodeVector
//	Delete: table | n u32 | rowids i64...
//
// Strings are u32-length-prefixed.

func putString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func getString(src []byte) (string, []byte, error) {
	if len(src) < 4 {
		return "", nil, fmt.Errorf("wal payload truncated")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) < 4+n {
		return "", nil, fmt.Errorf("wal payload truncated")
	}
	return string(src[4 : 4+n]), src[4+n:], nil
}

type colDefRec struct {
	Name    string
	Type    types.Type
	NotNull bool
}

func encodeCreateTable(name string, cols []colDefRec) []byte {
	out := putString(nil, name)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(cols)))
	for _, c := range cols {
		out = putString(out, c.Name)
		out = append(out, byte(c.Type))
		if c.NotNull {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

func decodeCreateTable(p []byte) (string, []colDefRec, error) {
	name, p, err := getString(p)
	if err != nil {
		return "", nil, err
	}
	if len(p) < 4 {
		return "", nil, fmt.Errorf("wal create-table truncated")
	}
	n := binary.LittleEndian.Uint32(p)
	p = p[4:]
	cols := make([]colDefRec, 0, n)
	for i := uint32(0); i < n; i++ {
		cname, rest, err := getString(p)
		if err != nil {
			return "", nil, err
		}
		p = rest
		if len(p) < 2 {
			return "", nil, fmt.Errorf("wal create-table truncated")
		}
		cols = append(cols, colDefRec{Name: cname, Type: types.Type(p[0]), NotNull: p[1] == 1})
		p = p[2:]
	}
	return name, cols, nil
}

func encodeCreateView(name, sqlText string) []byte {
	return putString(putString(nil, name), sqlText)
}

func decodeCreateView(p []byte) (string, string, error) {
	name, p, err := getString(p)
	if err != nil {
		return "", "", err
	}
	sqlText, _, err := getString(p)
	return name, sqlText, err
}

func encodeInsert(table string, chunk *vector.Chunk) []byte {
	out := putString(nil, table)
	return vector.EncodeChunk(out, chunk)
}

func decodeInsert(p []byte) (string, *vector.Chunk, error) {
	name, p, err := getString(p)
	if err != nil {
		return "", nil, err
	}
	chunk, _, err := vector.DecodeChunk(p)
	return name, chunk, err
}

func encodeUpdate(table string, col int, rowIDs []int64, vals *vector.Vector) []byte {
	out := putString(nil, table)
	out = binary.LittleEndian.AppendUint32(out, uint32(col))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rowIDs)))
	for _, r := range rowIDs {
		out = binary.LittleEndian.AppendUint64(out, uint64(r))
	}
	return vector.EncodeVector(out, vals)
}

func decodeUpdate(p []byte) (string, int, []int64, *vector.Vector, error) {
	name, p, err := getString(p)
	if err != nil {
		return "", 0, nil, nil, err
	}
	if len(p) < 8 {
		return "", 0, nil, nil, fmt.Errorf("wal update truncated")
	}
	col := int(binary.LittleEndian.Uint32(p))
	n := int(binary.LittleEndian.Uint32(p[4:]))
	p = p[8:]
	if len(p) < 8*n {
		return "", 0, nil, nil, fmt.Errorf("wal update truncated")
	}
	rowIDs := make([]int64, n)
	for i := range rowIDs {
		rowIDs[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	p = p[8*n:]
	vals, _, err := vector.DecodeVector(p)
	return name, col, rowIDs, vals, err
}

func encodeDelete(table string, rowIDs []int64) []byte {
	out := putString(nil, table)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rowIDs)))
	for _, r := range rowIDs {
		out = binary.LittleEndian.AppendUint64(out, uint64(r))
	}
	return out
}

func decodeDelete(p []byte) (string, []int64, error) {
	name, p, err := getString(p)
	if err != nil {
		return "", nil, err
	}
	if len(p) < 4 {
		return "", nil, fmt.Errorf("wal delete truncated")
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) < 8*n {
		return "", nil, fmt.Errorf("wal delete truncated")
	}
	rowIDs := make([]int64, n)
	for i := range rowIDs {
		rowIDs[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return name, rowIDs, nil
}

// walLogger queues logical change records into the transaction's log
// buffer; the txn manager flushes them to the WAL at commit. It
// implements exec.Logger.
type walLogger struct{}

func (walLogger) LogInsert(tx *txn.Transaction, table string, chunk *vector.Chunk) {
	tx.AppendLog(byte(wal.RecInsert), encodeInsert(table, chunk))
}

func (walLogger) LogUpdate(tx *txn.Transaction, table string, col int, rowIDs []int64, vals *vector.Vector) {
	tx.AppendLog(byte(wal.RecUpdate), encodeUpdate(table, col, rowIDs, vals))
}

func (walLogger) LogDelete(tx *txn.Transaction, table string, rowIDs []int64) {
	tx.AppendLog(byte(wal.RecDelete), encodeDelete(table, rowIDs))
}
