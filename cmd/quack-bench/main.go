// quack-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index): it runs the experiment
// implementations from internal/bench at paper scale and prints the same
// rows/series the paper reports.
//
// Usage:
//
//	quack-bench -exp table1|figure1|ancode|transfer|bulkupdate|engine|joins|checksum|dashboard|scaling|serve|all
//	quack-bench -exp all -scale 0.1   # quicker, smaller datasets
//	quack-bench -exp scaling -threads 16   # sweep 1,2,4,8,16 workers
//	quack-bench -exp scaling -json scaling.json   # CI bench artifact
//	quack-bench -exp scaling -baseline BENCH_BASELINE.json   # CI bench gate
//	quack-bench -exp serve -sessions 16   # multi-session sweep 1,4,16
//
// -json merges into the target file section by section (the scaling
// sweep owns points/selective_filter, the serve sweep owns serve), so
// sequential invocations build one BENCH_BASELINE.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, figure1, ancode, transfer, bulkupdate, engine, joins, checksum, dashboard, scaling, serve, all)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	threads := flag.Int("threads", 8, "maximum worker count for the scaling sweep (powers of two up to this)")
	sessions := flag.Int("sessions", 16, "maximum session count for the serve sweep (1, 4, ... up to this)")
	jsonPath := flag.String("json", "", "merge this run's sweep sections as JSON into this path (CI bench trajectory)")
	baseline := flag.String("baseline", "", "compare the sweeps against this committed JSON and fail on regression (CI bench gate)")
	tolerance := flag.Float64("tolerance", 0.30, "allowed slowdown vs the baseline before the gate fails (0.30 = +30%)")
	flag.Parse()

	if err := run(*exp, bench.Scale(*scale), *threads, *sessions, *jsonPath, *baseline, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "quack-bench:", err)
		os.Exit(1)
	}
}

// threadSweep lists the worker counts to sweep: 1, 2, 4, ... up to and
// including maxThreads.
func threadSweep(maxThreads int) []int {
	if maxThreads < 1 {
		maxThreads = 1
	}
	var out []int
	for n := 1; n < maxThreads; n *= 2 {
		out = append(out, n)
	}
	return append(out, maxThreads)
}

// sessionSweep lists the serve-mode session counts: 1, 4, 16, ... up to
// and including maxSessions.
func sessionSweep(maxSessions int) []int {
	if maxSessions < 1 {
		maxSessions = 1
	}
	var out []int
	for n := 1; n < maxSessions; n *= 4 {
		out = append(out, n)
	}
	return append(out, maxSessions)
}

func run(exp string, scale bench.Scale, threads, sessions int, jsonPath, baseline string, tolerance float64) error {
	w := os.Stdout
	sep := func() {
		fmt.Fprintln(w, "\n"+string(make([]byte, 0))+"----------------------------------------------------------------")
	}

	type experiment struct {
		name string
		fn   func() error
	}
	experiments := []experiment{
		{"table1", func() error {
			machines := int(2_000_000 * float64(scale))
			if machines < 200_000 {
				machines = 200_000
			}
			return bench.Table1(w, machines, 42)
		}},
		{"figure1", func() error {
			values := int(8_000_000 * float64(scale))
			if values < 100_000 {
				values = 100_000
			}
			return bench.Figure1(w, values)
		}},
		{"ancode", func() error {
			// Kernel benchmark: keep the working set near-cache so the
			// measurement isolates compute overhead, not DRAM noise.
			values := int(2_000_000 * float64(scale))
			if values < 500_000 {
				values = 500_000
			}
			_, err := bench.ANCode(w, values, 7)
			return err
		}},
		{"transfer", func() error {
			rows := int(5_000_000 * float64(scale))
			if rows < 100_000 {
				rows = 100_000
			}
			_, err := bench.Transfer(w, rows)
			return err
		}},
		{"bulkupdate", func() error {
			rows := int(5_000_000 * float64(scale))
			if rows < 100_000 {
				rows = 100_000
			}
			_, err := bench.BulkUpdate(w, rows)
			return err
		}},
		{"engine", func() error {
			rows := int(5_000_000 * float64(scale))
			if rows < 100_000 {
				rows = 100_000
			}
			_, err := bench.Engine(w, rows)
			return err
		}},
		{"joins", func() error {
			build := int(2_000_000 * float64(scale))
			if build < 50_000 {
				build = 50_000
			}
			_, err := bench.Joins(w, build, build)
			return err
		}},
		{"checksum", func() error {
			rows := int(5_000_000 * float64(scale))
			if rows < 200_000 {
				rows = 200_000
			}
			dir, err := os.MkdirTemp("", "quack-e8-*")
			if err != nil {
				return err
			}
			defer func() { _ = os.RemoveAll(dir) }()
			_, err = bench.Checksum(w, dir, rows)
			return err
		}},
		{"dashboard", func() error {
			rows := int(1_000_000 * float64(scale))
			if rows < 50_000 {
				rows = 50_000
			}
			_, err := bench.Dashboard(w, rows, 3*time.Second)
			return err
		}},
		{"scaling", func() error {
			rows := int(2_000_000 * float64(scale))
			if rows < 100_000 {
				rows = 100_000
			}
			points, err := bench.Scaling(w, rows, threadSweep(threads))
			if err != nil {
				return err
			}
			selective, err := bench.ZoneMapFilter(w, rows, threads)
			if err != nil {
				return err
			}
			// Write the trajectory artifact BEFORE gating: a failed gate
			// is exactly when the fresh numbers are needed for debugging.
			if jsonPath != "" {
				if err := mergeBenchFile(w, jsonPath, func(f *benchFile) {
					f.Rows = rows
					f.Points = points
					f.Selective = selective
				}); err != nil {
					return err
				}
			}
			if baseline != "" {
				if err := gateScaling(w, baseline, points, selective, tolerance); err != nil {
					return err
				}
			}
			return nil
		}},
		{"serve", func() error {
			rows := int(500_000 * float64(scale))
			if rows < 50_000 {
				rows = 50_000
			}
			serve, serveMetrics, err := bench.Serve(w, rows, threads, sessionSweep(sessions))
			if err != nil {
				return err
			}
			if jsonPath != "" {
				if err := mergeBenchFile(w, jsonPath, func(f *benchFile) {
					f.ServeRows = rows
					f.Serve = serve
					f.ServeMetrics = serveMetrics
				}); err != nil {
					return err
				}
			}
			if baseline != "" {
				if err := gateServe(w, baseline, serve, tolerance); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	matched := false
	for _, e := range experiments {
		if exp != "all" && exp != e.name {
			continue
		}
		matched = true
		fmt.Fprintf(w, "== %s ==\n", e.name)
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		sep()
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// benchFile is the JSON shape of both the uploaded trajectory artifact
// and the committed BENCH_BASELINE.json. The scaling sweep owns
// rows/points/selective_filter; the serve sweep owns serve_rows/serve;
// mergeBenchFile lets either run refresh its sections without clobbering
// the other's.
type benchFile struct {
	Experiment string                   `json:"experiment"`
	Rows       int                      `json:"rows,omitempty"`
	Points     []bench.ScalingPoint     `json:"points,omitempty"`
	Selective  []bench.SelectivityPoint `json:"selective_filter,omitempty"`
	ServeRows  int                      `json:"serve_rows,omitempty"`
	Serve      []bench.ServePoint       `json:"serve,omitempty"`
	// ServeMetrics is the engine's metrics-registry snapshot after the
	// serve sweep — recorded in the artifact, never gated (counters move
	// with machine and scale).
	ServeMetrics map[string]int64 `json:"serve_metrics,omitempty"`
}

// readBenchFile loads the artifact/baseline; a missing file is an empty
// one (the first sweep to run creates it).
func readBenchFile(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("parse %s: %w", path, err)
	}
	return f, nil
}

// mergeBenchFile applies one sweep's sections to the artifact file,
// preserving whatever other sweeps already wrote there.
func mergeBenchFile(w io.Writer, path string, update func(*benchFile)) error {
	f, err := readBenchFile(path)
	if err != nil {
		return err
	}
	f.Experiment = "quack-bench"
	update(&f)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}

// gateScaling compares the fresh sweep against the committed baseline
// and errors on any workload regressing past the tolerance. CI runners
// are not identical machines, so the tolerance is deliberately coarse —
// the gate catches the step-function regressions (a workload falling
// off its fast path), not single-digit noise. Label a PR skip-bench-gate
// for intentional slowdowns and refresh the baseline in the same change.
func gateScaling(w io.Writer, path string, fresh []bench.ScalingPoint, freshSel []bench.SelectivityPoint, tolerance float64) error {
	base, err := readBenchFile(path)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	regressions := bench.CompareScaling(base.Points, fresh, tolerance)
	regressions = append(regressions, bench.CompareSelective(base.Selective, freshSel, tolerance)...)
	return reportGate(w, path, regressions, tolerance)
}

// gateServe compares the fresh serve sweep's throughput per session
// count against the committed baseline, same tolerance discipline as
// the scaling gate.
func gateServe(w io.Writer, path string, fresh []bench.ServePoint, tolerance float64) error {
	base, err := readBenchFile(path)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	return reportGate(w, path, bench.CompareServe(base.Serve, fresh, tolerance), tolerance)
}

func reportGate(w io.Writer, path string, regressions []string, tolerance float64) error {
	if len(regressions) == 0 {
		fmt.Fprintf(w, "bench gate: all workloads within +%.0f%% of %s\n", tolerance*100, path)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(w, "bench gate REGRESSION:", r)
	}
	return fmt.Errorf("bench gate: %d workload(s) regressed past +%.0f%% vs %s", len(regressions), tolerance*100, path)
}
