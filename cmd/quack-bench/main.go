// quack-bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index): it runs the experiment
// implementations from internal/bench at paper scale and prints the same
// rows/series the paper reports.
//
// Usage:
//
//	quack-bench -exp table1|figure1|ancode|transfer|bulkupdate|engine|joins|checksum|dashboard|scaling|all
//	quack-bench -exp all -scale 0.1   # quicker, smaller datasets
//	quack-bench -exp scaling -threads 16   # sweep 1,2,4,8,16 workers
//	quack-bench -exp scaling -json scaling.json   # CI bench artifact
//	quack-bench -exp scaling -baseline BENCH_BASELINE.json   # CI bench gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1, figure1, ancode, transfer, bulkupdate, engine, joins, checksum, dashboard, scaling, all)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	threads := flag.Int("threads", 8, "maximum worker count for the scaling sweep (powers of two up to this)")
	jsonPath := flag.String("json", "", "write the scaling sweep's points as JSON to this path (CI bench trajectory)")
	baseline := flag.String("baseline", "", "compare the scaling sweep against this committed JSON and fail on regression (CI bench gate)")
	tolerance := flag.Float64("tolerance", 0.30, "allowed slowdown vs the baseline before the gate fails (0.30 = +30%)")
	flag.Parse()

	if err := run(*exp, bench.Scale(*scale), *threads, *jsonPath, *baseline, *tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "quack-bench:", err)
		os.Exit(1)
	}
}

// threadSweep lists the worker counts to sweep: 1, 2, 4, ... up to and
// including maxThreads.
func threadSweep(maxThreads int) []int {
	if maxThreads < 1 {
		maxThreads = 1
	}
	var out []int
	for n := 1; n < maxThreads; n *= 2 {
		out = append(out, n)
	}
	return append(out, maxThreads)
}

func run(exp string, scale bench.Scale, threads int, jsonPath, baseline string, tolerance float64) error {
	w := os.Stdout
	sep := func() {
		fmt.Fprintln(w, "\n"+string(make([]byte, 0))+"----------------------------------------------------------------")
	}

	type experiment struct {
		name string
		fn   func() error
	}
	experiments := []experiment{
		{"table1", func() error {
			machines := int(2_000_000 * float64(scale))
			if machines < 200_000 {
				machines = 200_000
			}
			return bench.Table1(w, machines, 42)
		}},
		{"figure1", func() error {
			values := int(8_000_000 * float64(scale))
			if values < 100_000 {
				values = 100_000
			}
			return bench.Figure1(w, values)
		}},
		{"ancode", func() error {
			// Kernel benchmark: keep the working set near-cache so the
			// measurement isolates compute overhead, not DRAM noise.
			values := int(2_000_000 * float64(scale))
			if values < 500_000 {
				values = 500_000
			}
			_, err := bench.ANCode(w, values, 7)
			return err
		}},
		{"transfer", func() error {
			rows := int(5_000_000 * float64(scale))
			if rows < 100_000 {
				rows = 100_000
			}
			_, err := bench.Transfer(w, rows)
			return err
		}},
		{"bulkupdate", func() error {
			rows := int(5_000_000 * float64(scale))
			if rows < 100_000 {
				rows = 100_000
			}
			_, err := bench.BulkUpdate(w, rows)
			return err
		}},
		{"engine", func() error {
			rows := int(5_000_000 * float64(scale))
			if rows < 100_000 {
				rows = 100_000
			}
			_, err := bench.Engine(w, rows)
			return err
		}},
		{"joins", func() error {
			build := int(2_000_000 * float64(scale))
			if build < 50_000 {
				build = 50_000
			}
			_, err := bench.Joins(w, build, build)
			return err
		}},
		{"checksum", func() error {
			rows := int(5_000_000 * float64(scale))
			if rows < 200_000 {
				rows = 200_000
			}
			dir, err := os.MkdirTemp("", "quack-e8-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			_, err = bench.Checksum(w, dir, rows)
			return err
		}},
		{"dashboard", func() error {
			rows := int(1_000_000 * float64(scale))
			if rows < 50_000 {
				rows = 50_000
			}
			_, err := bench.Dashboard(w, rows, 3*time.Second)
			return err
		}},
		{"scaling", func() error {
			rows := int(2_000_000 * float64(scale))
			if rows < 100_000 {
				rows = 100_000
			}
			points, err := bench.Scaling(w, rows, threadSweep(threads))
			if err != nil {
				return err
			}
			selective, err := bench.ZoneMapFilter(w, rows, threads)
			if err != nil {
				return err
			}
			// Write the trajectory artifact BEFORE gating: a failed gate
			// is exactly when the fresh numbers are needed for debugging.
			if jsonPath != "" {
				data, err := json.MarshalIndent(map[string]any{
					"experiment":       "scaling",
					"rows":             rows,
					"points":           points,
					"selective_filter": selective,
				}, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n", jsonPath)
			}
			if baseline != "" {
				if err := gateScaling(w, baseline, points, selective, tolerance); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	matched := false
	for _, e := range experiments {
		if exp != "all" && exp != e.name {
			continue
		}
		matched = true
		fmt.Fprintf(w, "== %s ==\n", e.name)
		if err := e.fn(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		sep()
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// scalingFile is the JSON shape of both the uploaded trajectory
// artifact and the committed BENCH_BASELINE.json.
type scalingFile struct {
	Experiment string                   `json:"experiment"`
	Rows       int                      `json:"rows"`
	Points     []bench.ScalingPoint     `json:"points"`
	Selective  []bench.SelectivityPoint `json:"selective_filter"`
}

// gateScaling compares the fresh sweep against the committed baseline
// and errors on any workload regressing past the tolerance. CI runners
// are not identical machines, so the tolerance is deliberately coarse —
// the gate catches the step-function regressions (a workload falling
// off its fast path), not single-digit noise. Label a PR skip-bench-gate
// for intentional slowdowns and refresh the baseline in the same change.
func gateScaling(w io.Writer, path string, fresh []bench.ScalingPoint, freshSel []bench.SelectivityPoint, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	var base scalingFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench gate: parse %s: %w", path, err)
	}
	regressions := bench.CompareScaling(base.Points, fresh, tolerance)
	regressions = append(regressions, bench.CompareSelective(base.Selective, freshSel, tolerance)...)
	if len(regressions) == 0 {
		fmt.Fprintf(w, "bench gate: all workloads within +%.0f%% of %s\n", tolerance*100, path)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(w, "bench gate REGRESSION:", r)
	}
	return fmt.Errorf("bench gate: %d workload(s) regressed past +%.0f%% vs %s", len(regressions), tolerance*100, path)
}
