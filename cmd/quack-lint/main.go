// Command quack-lint runs the engine-invariant static analyzers
// (internal/analysis) over the given package patterns:
//
//	go run ./cmd/quack-lint ./...
//	go run ./cmd/quack-lint -json ./... > lint.json
//
// Exit status: 0 when the tree is clean, 1 when any diagnostic fires
// (including malformed //lint:ignore directives), 2 when loading or
// type-checking fails. Honored suppressions are counted on stderr so
// waivers stay visible, and appear in -json output under
// "suppressed".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable diagnostics (file/line/analyzer/message) on stdout")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: quack-lint [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "quack-lint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadPatterns(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quack-lint:", err)
		os.Exit(2)
	}

	res := analysis.Run(pkgs, analysis.All())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Diagnostics []analysis.Diagnostic `json:"diagnostics"`
			Suppressed  []analysis.Diagnostic `json:"suppressed"`
		}{res.Diags, res.Suppressed}
		if out.Diagnostics == nil {
			out.Diagnostics = []analysis.Diagnostic{}
		}
		if out.Suppressed == nil {
			out.Suppressed = []analysis.Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "quack-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diags {
			fmt.Println(d.String())
		}
	}

	summary := fmt.Sprintf("quack-lint: %d package(s), %d diagnostic(s), %d suppression(s) honored",
		len(pkgs), len(res.Diags), len(res.Suppressed))
	if len(res.Suppressed) > 0 {
		var lines []string
		for _, s := range res.Suppressed {
			lines = append(lines, fmt.Sprintf("  suppressed %s:%d %s: %s", s.File, s.Line, s.Analyzer, s.SuppressReason))
		}
		summary += "\n" + strings.Join(lines, "\n")
	}
	fmt.Fprintln(os.Stderr, summary)
	if len(res.Diags) > 0 {
		os.Exit(1)
	}
}
