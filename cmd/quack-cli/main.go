// quack-cli is an interactive SQL shell over a QuackDB database file —
// the embedded engine driven from a terminal.
//
// Usage:
//
//	quack-cli [path.qdb]       # empty path: in-memory database
//	quack-cli -c 'SELECT 42' path.qdb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/quack"
)

func main() {
	command := flag.String("c", "", "execute this SQL and exit")
	timing := flag.Bool("timer", false, "print per-statement execution time")
	flag.Parse()

	path := ":memory:"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	db, err := quack.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quack-cli:", err)
		os.Exit(1)
	}
	defer db.Close()

	if *command != "" {
		if err := execute(db, *command, *timing); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("QuackDB shell (%s). Terminate statements with ';'. \\q quits.\n", path)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "quack> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && (trimmed == "\\q" || trimmed == "exit" || trimmed == "quit") {
			break
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "   ..> "
			continue
		}
		sql := buf.String()
		buf.Reset()
		prompt = "quack> "
		if err := execute(db, sql, *timing); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

func execute(db *quack.DB, sql string, timing bool) error {
	start := time.Now()
	rows, err := db.Query(sql)
	if err != nil {
		return err
	}
	printRows(rows)
	if timing {
		fmt.Printf("(%v)\n", time.Since(start).Round(time.Microsecond))
	}
	return nil
}

func printRows(rows *quack.Rows) {
	cols := rows.Columns()
	if len(cols) == 0 {
		if n := rows.NumRows(); n == 0 {
			fmt.Println("ok")
		}
		return
	}
	widths := make([]int, len(cols))
	for i, c := range cols {
		widths[i] = len(c)
	}
	var table [][]string
	for rows.Next() {
		row := make([]string, len(cols))
		for i := range cols {
			row[i] = rows.Value(i).String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		table = append(table, row)
		if len(table) >= 10000 {
			break // keep the terminal usable
		}
	}
	line := func(parts []string) {
		cells := make([]string, len(parts))
		for i, p := range parts {
			cells[i] = fmt.Sprintf("%-*s", widths[i], p)
		}
		fmt.Println("| " + strings.Join(cells, " | ") + " |")
	}
	rule := make([]string, len(cols))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(cols)
	line(rule)
	for _, row := range table {
		line(row)
	}
	fmt.Printf("(%d rows)\n", len(table))
}
