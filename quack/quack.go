// Package quack is QuackDB's public embedded API: an in-process
// analytical database in the spirit of the system described in
// "Data Management for Data Science — Towards Embedded Analytics"
// (Raasveldt & Mühleisen, CIDR 2020).
//
// The database runs inside the application's process and address space,
// so query results are handed to the application as chunks of column
// slices — the engine's own internal representation — without
// serialization or per-value call overhead (§5 of the paper):
//
//	db, _ := quack.Open("data.qdb")
//	defer db.Close()
//	rows, _ := db.Query("SELECT region, sum(revenue) FROM sales GROUP BY region")
//	for {
//	    chunk := rows.NextChunk()
//	    if chunk == nil {
//	        break
//	    }
//	    sums := chunk.Cols[1].F64 // direct slice access, zero copies
//	    ...
//	}
//
// A conventional value-at-a-time API (Next/Scan) is also provided — it
// is deliberately the unflattering baseline the paper compares against.
// Bulk loading goes through the Appender, which fills chunks in place
// and hands them to the storage layer.
//
// Queries use all of the host's cores by default: plans are decomposed
// into morsel-driven parallel pipelines (see internal/exec), with
// WithThreads(1) as the single-threaded baseline. Parallelism never
// changes results — chunks arrive in the same deterministic order at
// every thread count, so the zero-copy chunk API above is unaffected.
//
// All queries — across every session — share one engine-wide worker
// pool sized at Open (WithThreads / QUACK_THREADS, resized by PRAGMA
// threads), so the engine's goroutine count stays bounded by the pool
// size no matter how many sessions run concurrently. The pool schedules
// morsel-sized steps by weighted fair share with priority aging: PRAGMA
// priority raises a session's CPU share (priority 200 receives twice
// the share of the default 100) without letting any session starve,
// and a per-session Threads override caps how many steps one query
// keeps runnable without resizing the pool. Scheduling, like thread
// count, never changes results.
//
// When a memory budget is enforced (WithMemoryLimit, PRAGMA
// memory_limit, or the QUACK_MEMORY_LIMIT environment variable), the
// budget is engine-wide — it covers every session together, not each
// session separately — and queries pass admission control before they
// start: each query claims PRAGMA memory_share of the budget (default
// 1.0, the whole budget — budgeted queries serialize unless a session
// opts into overlap by lowering its share), and a query whose claim
// does not fit waits in a bounded queue, served highest-priority
// first. PRAGMA admission_queue_depth
// bounds that queue (default 32); setting it to 0 makes the session
// fail fast instead of queuing. One query is always admitted, so a
// budget smaller than any claim degrades to serial execution rather
// than deadlock, and the operators below it spill to stay within the
// real limit.
//
// PRAGMA rebuild_stats='t' recomputes table t's per-segment zone-map
// statistics exactly from the currently visible rows; runtime
// maintenance only ever widens them, so this tightens the maps back
// after heavy deletes or rolled-back loads.
//
// Scans keep per-segment zone maps (min/max, null counts, maintained at
// append time and persisted through checkpoints) and skip the segments
// a WHERE conjunct refutes — consulting the compressed encodings
// directly, so skipped segments are never decompressed. Skipping never
// changes results; it only avoids touching bytes the filter would
// discard. EXPLAIN reports the pushed predicates and a
// "segments skipped: X/Y" note per scan. Knobs: PRAGMA zone_maps=0|1
// toggles skipping at runtime (the QUACK_DISABLE_ZONEMAPS=1 environment
// variable sets the default off, mirroring QUACK_THREADS and
// QUACK_MEMORY_LIMIT), and PRAGMA segments_scanned /
// segments_skipped read the session's cumulative scan counters.
//
// Segments that survive skipping can still execute without being
// decompressed: exact pushed conjuncts run as selection kernels over
// the compressed payloads themselves — string predicates evaluated
// once against a segment's dictionary and then matched on the packed
// code array, integer ranges rewritten into the frame-of-reference
// delta domain and compared on the bit-packed words, run-length runs
// answered with one comparison per run — and only the surviving rows
// are materialized (late materialization). Like skipping, encoded
// execution never changes results — the full filter still runs on what
// the scan emits — and it steps aside automatically for segments with
// in-flight updates or payload shapes a kernel cannot answer exactly.
// PRAGMA encoded_exec=0|1 toggles it (QUACK_DISABLE_ENCODED_EXEC=1
// sets the default off); because the kernels consume the pushed zone
// filters, zone_maps=0 disables encoded execution too. EXPLAIN adds an
// "encoded execution: X/Y surviving segments" note per scan, EXPLAIN
// ANALYZE reports enc=N and decoded=N selected=N per operator, and
// PRAGMA segments_encoded / rows_encoded_selected read the cumulative
// counters.
//
// # Observability
//
// EXPLAIN ANALYZE <select> executes the query and reports the measured
// per-operator tree — rows, wall and busy time, morsels, segments
// scanned/skipped, spill bytes per operator, aggregated across all
// worker threads — plus the parse/bind/optimize/admit_wait/execute
// phase spans. PRAGMA profiling=1 collects the same profile for every
// statement a session runs, and PRAGMA last_profile returns the most
// recent one as a single JSON object. Profiles are deterministic where
// the engine is: per-operator row counts are identical at every thread
// count.
//
// The engine also keeps one process-wide metrics registry covering the
// scheduler (steps, step-wait quantiles, aging interventions, runnable
// depth), admission control (admitted/queued/rejected, wait quantiles,
// claimed bytes), the buffer pool (reserved/peak/limit, evictions),
// durability (WAL bytes, checkpoint latency), scans (segments
// scanned/skipped, bytes decompressed) and operator spilling. Read it
// with DB.Metrics / DB.WriteMetrics or PRAGMA metrics; histogram
// metrics expand to _count, _sum_ns, _p50_ns and _p99_ns cells. The
// legacy counter PRAGMAs read through the registry, so both surfaces
// always agree.
//
// WithLogger installs a log sink; PRAGMA log_min_duration_ms=N then
// emits one JSON line (query, duration_ms, admit_wait_ms, rows,
// spill_bytes) for every statement taking at least N milliseconds
// (0 logs everything, negative — the default — disables).
//
// # Knobs
//
// Engine-wide (any session; environment variables set the default at
// Open):
//
//	PRAGMA memory_limit='64MB'     QUACK_MEMORY_LIMIT       buffer-pool budget, unset = unlimited
//	PRAGMA threads=N               QUACK_THREADS            shared worker-pool size, default GOMAXPROCS
//	PRAGMA zone_maps=0|1           QUACK_DISABLE_ZONEMAPS   segment skipping, default on
//	PRAGMA encoded_exec=0|1        QUACK_DISABLE_ENCODED_EXEC  filter kernels over compressed segments, default on
//	PRAGMA log_min_duration_ms=N   —                        slow-query log threshold, default -1 (off)
//	PRAGMA memtest=0|1             —                        buffer allocation memory testing
//	PRAGMA checksum_verification=0|1  —                     block checksum verification on read
//	PRAGMA rebuild_stats='t'       —                        recompute table t's zone maps exactly
//
// Session-scoped:
//
//	PRAGMA priority=N              scheduling weight, default 100
//	PRAGMA memory_share=F          fraction of the budget one query claims, default 1.0
//	PRAGMA admission_queue_depth=N bounded admission queue, default 32; 0 = fail fast
//	PRAGMA profiling=0|1           per-operator profiler for every statement, default off
//
// Read-only:
//
//	PRAGMA last_profile            most recent profile of this session, JSON
//	PRAGMA metrics                 registry snapshot as (name, value) rows
//	PRAGMA memory_usage            current buffer-pool reservation (alias: memory_used)
//	PRAGMA memory_peak             reservation high-water mark
//	PRAGMA wal_size, database_size storage sizes
//	PRAGMA segments_scanned, segments_skipped          scan counters
//	PRAGMA segments_encoded, rows_encoded_selected     encoded-execution counters
//	PRAGMA agg_spill_partitions, agg_spilled_bytes     aggregation spill counters
//	PRAGMA sort_spilled_bytes                          external-sort spill bytes
package quack

import (
	"fmt"
	"io"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/types"
	"repro/internal/vector"
)

// Type aliases re-export the engine's native data representation so
// applications can consume chunks directly.
type (
	// Chunk is a horizontal slice of a result set: column vectors of
	// equal length.
	Chunk = vector.Chunk
	// Vector is a typed column slice with a validity mask.
	Vector = vector.Vector
	// Type is a SQL logical type.
	Type = types.Type
	// Value is a boxed SQL value (value-at-a-time API only).
	Value = types.Value
)

// Re-exported logical types.
const (
	Boolean   = types.Boolean
	Integer   = types.Integer
	BigInt    = types.BigInt
	Double    = types.Double
	Varchar   = types.Varchar
	Timestamp = types.Timestamp
)

// Option configures Open.
type Option func(*core.Config)

// WithMemoryLimit caps the engine's buffer pool, in bytes. An embedded
// database shares the machine with its host application and must not
// assume it owns all resources (§4).
func WithMemoryLimit(bytes int64) Option {
	return func(c *core.Config) { c.MemoryLimit = bytes }
}

// WithTotalRAM tells the adaptive policy how much RAM the application
// and database share.
func WithTotalRAM(bytes int64) Option {
	return func(c *core.Config) { c.TotalRAM = bytes }
}

// WithoutChecksumVerification disables block checksum verification on
// read. Only the resilience ablation (experiment E8) should use this.
func WithoutChecksumVerification() Option {
	return func(c *core.Config) { c.DisableChecksums = true }
}

// WithMemTest enables moving-inversions memory testing of buffer
// allocations (§3's defense against silent RAM corruption).
func WithMemTest() Option {
	return func(c *core.Config) { c.MemTest = true }
}

// WithTmpDir sets the spill directory for out-of-core operators.
func WithTmpDir(dir string) Option {
	return func(c *core.Config) { c.TmpDir = dir }
}

// WithThreads sets the worker-pool size for parallel query pipelines.
// The default comes from the QUACK_THREADS environment variable if set,
// else runtime.GOMAXPROCS(0) — an embedded analytical engine should use
// all of the hardware its host process owns (§6). n = 1 disables
// intra-query parallelism; results are identical (including row order,
// floating-point sums, and min/max/ORDER BY over NaN-bearing DOUBLE
// columns, which follow a total order with NaN greatest) at every
// setting. PRAGMA threads changes it at runtime.
func WithThreads(n int) Option {
	return func(c *core.Config) { c.Threads = n }
}

// WithLogger installs a sink for engine log lines — today the
// slow-query log: once PRAGMA log_min_duration_ms is set >= 0, every
// statement at or above the threshold emits one JSON line (query,
// duration_ms, admit_wait_ms, rows, spill_bytes). Each call receives
// one complete line without a trailing newline; the sink may be called
// from multiple sessions concurrently. The default is silence.
func WithLogger(sink func(line string)) Option {
	return func(c *core.Config) { c.LogSink = sink }
}

// DB is an embedded database handle, safe for concurrent use.
type DB struct {
	core *core.Database
}

// Open opens or creates the database file at path. Empty path or
// ":memory:" opens a volatile in-memory database.
func Open(path string, opts ...Option) (*DB, error) {
	cfg := core.Config{Path: path}
	for _, o := range opts {
		o(&cfg)
	}
	db, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{core: db}, nil
}

// Close checkpoints and closes the database.
func (db *DB) Close() error { return db.core.Close() }

// Exec runs a statement and returns the number of affected rows.
func (db *DB) Exec(sql string, args ...any) (int64, error) {
	sess := db.core.NewSession()
	params, err := toValues(args)
	if err != nil {
		return 0, err
	}
	results, err := sess.Execute(sql, params...)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, r := range results {
		n += r.RowsAffected
	}
	return n, nil
}

// Query runs a SELECT and returns its result set.
func (db *DB) Query(sql string, args ...any) (*Rows, error) {
	sess := db.core.NewSession()
	return query(sess, sql, args)
}

// Conn is a dedicated session on the database: session-scoped settings
// (PRAGMA priority, memory_share, admission_queue_depth, threads, and
// the JoinStrategy/Threads overrides on Tx) persist across its queries,
// unlike DB.Exec/DB.Query which run each call on a fresh session. A
// Conn is not safe for concurrent use; open one per goroutine — they
// are cheap, and all of them share the database's worker pool and
// memory budget.
type Conn struct {
	sess *core.Session
}

// Conn opens a dedicated session.
func (db *DB) Conn() *Conn { return &Conn{sess: db.core.NewSession()} }

// Exec runs a statement on this session and returns the number of
// affected rows.
func (c *Conn) Exec(sql string, args ...any) (int64, error) {
	params, err := toValues(args)
	if err != nil {
		return 0, err
	}
	results, err := c.sess.Execute(sql, params...)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, r := range results {
		n += r.RowsAffected
	}
	return n, nil
}

// Query runs a SELECT on this session and returns its result set.
func (c *Conn) Query(sql string, args ...any) (*Rows, error) {
	return query(c.sess, sql, args)
}

// Checkpoint forces all committed data into the database file and
// truncates the WAL. Fails with an error if transactions are in flight.
func (db *DB) Checkpoint() error { return db.core.Checkpoint() }

// SetAppUsage informs the adaptive policy of the host application's
// current resource usage (§4 cooperation).
func (db *DB) SetAppUsage(ramBytes int64, cpuFraction float64) {
	db.core.Monitor().SetAppUsage(adaptive.Usage{AppRAM: ramBytes, AppCPU: cpuFraction})
}

// MemoryUsed returns the engine's currently reserved bytes.
func (db *DB) MemoryUsed() int64 { return db.core.Pool().Used() }

// Metrics snapshots the engine-wide metrics registry as a name→value
// map: scheduler, admission control, buffer pool, WAL/checkpoint, scan
// and spill counters in one read. Histogram metrics expand to _count,
// _sum_ns, _p50_ns and _p99_ns cells.
func (db *DB) Metrics() map[string]int64 { return db.core.MetricsMap() }

// WriteMetrics writes the metrics registry in text exposition form —
// one "name value" line per cell, sorted by name.
func (db *DB) WriteMetrics(w io.Writer) error { return db.core.MetricsText(w) }

// Internal returns the underlying engine facade. It is exported for the
// benchmark harness and examples that exercise engine internals; regular
// applications should not need it.
func (db *DB) Internal() *core.Database { return db.core }

func query(sess *core.Session, sql string, args []any) (*Rows, error) {
	params, err := toValues(args)
	if err != nil {
		return nil, err
	}
	res, err := sess.ExecuteOne(sql, params...)
	if err != nil {
		return nil, err
	}
	if !res.HasRows {
		return &Rows{res: &core.Result{}}, nil
	}
	return &Rows{res: res}, nil
}

// Rows is a materialized result set offering two consumption styles:
// the bulk chunk interface (NextChunk) that hands over the engine's
// column slices directly, and the conventional value-at-a-time
// interface (Next/Scan) kept as the transfer-efficiency baseline.
type Rows struct {
	res      *core.Result
	chunkIdx int
	rowIdx   int
	cur      *Chunk
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.res.Columns }

// Types returns the result column types.
func (r *Rows) Types() []Type { return r.res.Types }

// NumRows returns the total number of rows.
func (r *Rows) NumRows() int64 { return r.res.NumRows() }

// NextChunk returns the next chunk of the result, or nil when the
// result is exhausted. The chunk is the engine's internal
// representation, handed over without copying; treat it as read-only.
func (r *Rows) NextChunk() *Chunk {
	if r.chunkIdx >= len(r.res.Chunks) {
		return nil
	}
	c := r.res.Chunks[r.chunkIdx]
	r.chunkIdx++
	return c
}

// Chunks returns all result chunks.
func (r *Rows) Chunks() []*Chunk { return r.res.Chunks }

// Next advances the value-at-a-time cursor.
func (r *Rows) Next() bool {
	if r.cur != nil && r.rowIdx+1 < r.cur.Len() {
		r.rowIdx++
		return true
	}
	r.cur = r.NextChunk()
	r.rowIdx = 0
	for r.cur != nil && r.cur.Len() == 0 {
		r.cur = r.NextChunk()
	}
	return r.cur != nil
}

// Scan copies the current row into dest pointers (*int64, *int32,
// *float64, *string, *bool, *time.Time, *Value, or *any).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("quack: Scan called without Next")
	}
	if len(dest) != r.cur.NumCols() {
		return fmt.Errorf("quack: Scan got %d destinations for %d columns", len(dest), r.cur.NumCols())
	}
	for i, d := range dest {
		if err := assign(d, r.cur.Cols[i], r.rowIdx); err != nil {
			return fmt.Errorf("quack: column %d: %w", i, err)
		}
	}
	return nil
}

// Value returns column i of the current row as a boxed Value.
func (r *Rows) Value(i int) Value {
	return r.cur.Cols[i].Get(r.rowIdx)
}

// Close releases the result (no-op for materialized results; kept for
// API familiarity).
func (r *Rows) Close() {}

func assign(dest any, col *Vector, row int) error {
	null := col.IsNull(row)
	switch d := dest.(type) {
	case *int64:
		if null {
			*d = 0
			return nil
		}
		switch col.Type {
		case types.Integer:
			*d = int64(col.I32[row])
		case types.BigInt, types.Timestamp:
			*d = col.I64[row]
		case types.Double:
			*d = int64(col.F64[row])
		case types.Boolean:
			if col.Bools[row] {
				*d = 1
			}
		default:
			return fmt.Errorf("cannot scan %s into *int64", col.Type)
		}
	case *int32:
		if null {
			*d = 0
			return nil
		}
		if col.Type != types.Integer {
			return fmt.Errorf("cannot scan %s into *int32", col.Type)
		}
		*d = col.I32[row]
	case *float64:
		if null {
			*d = 0
			return nil
		}
		switch col.Type {
		case types.Double:
			*d = col.F64[row]
		case types.Integer:
			*d = float64(col.I32[row])
		case types.BigInt:
			*d = float64(col.I64[row])
		default:
			return fmt.Errorf("cannot scan %s into *float64", col.Type)
		}
	case *string:
		if null {
			*d = ""
			return nil
		}
		*d = col.Get(row).String()
	case *bool:
		if null {
			*d = false
			return nil
		}
		if col.Type != types.Boolean {
			return fmt.Errorf("cannot scan %s into *bool", col.Type)
		}
		*d = col.Bools[row]
	case *time.Time:
		if null {
			*d = time.Time{}
			return nil
		}
		if col.Type != types.Timestamp {
			return fmt.Errorf("cannot scan %s into *time.Time", col.Type)
		}
		*d = time.UnixMicro(col.I64[row]).UTC()
	case *Value:
		*d = col.Get(row)
	case *any:
		if null {
			*d = nil
			return nil
		}
		v := col.Get(row)
		switch v.Type {
		case types.Boolean:
			*d = v.Bool
		case types.Integer:
			*d = int32(v.I64)
		case types.BigInt:
			*d = v.I64
		case types.Double:
			*d = v.F64
		case types.Varchar:
			*d = v.Str
		case types.Timestamp:
			*d = time.UnixMicro(v.I64).UTC()
		}
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	return nil
}

func toValues(args []any) ([]types.Value, error) {
	out := make([]types.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("quack: argument %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

func toValue(a any) (types.Value, error) {
	switch v := a.(type) {
	case nil:
		return types.NewNull(types.Null), nil
	case bool:
		return types.NewBool(v), nil
	case int:
		return types.NewBigInt(int64(v)), nil
	case int32:
		return types.NewInt(v), nil
	case int64:
		return types.NewBigInt(v), nil
	case float64:
		return types.NewDouble(v), nil
	case string:
		return types.NewVarchar(v), nil
	case time.Time:
		return types.NewTimestamp(v.UnixMicro()), nil
	case types.Value:
		return v, nil
	default:
		return types.Value{}, fmt.Errorf("unsupported parameter type %T", a)
	}
}

// compile-time check that the core session's strategy type matches.
var _ = exec.JoinAuto
