package quack_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/quack"
)

// Selective-predicate palette for the zone-map fuzz: clustered-range
// predicates over the append-ordered id (the case zone maps excel at),
// unclustered predicates over qty/price (every segment survives —
// skipping must be a no-op), string equality (dictionary membership),
// NULL tests, constant-on-the-left, OR (not decomposable, never
// pushed), and predicates under joins and aggregates.
var zoneMapQueries = []string{
	"SELECT id, grp, qty FROM facts WHERE id >= 100 AND id < 130",
	"SELECT count(*), sum(qty) FROM facts WHERE id >= 29000",
	"SELECT id FROM facts WHERE id = 12345",
	"SELECT id FROM facts WHERE 25000 <= id",
	"SELECT count(*) FROM facts WHERE id < 0",
	"SELECT id, price FROM facts WHERE qty = 499 AND id < 5000",
	"SELECT count(*) FROM facts WHERE price > 249.0",
	"SELECT count(*) FROM facts WHERE grp = 'emea' AND id >= 28000",
	"SELECT count(*) FROM facts WHERE grp = 'nowhere'",
	"SELECT count(*) FROM facts WHERE grp IS NULL AND id < 200",
	"SELECT count(*) FROM facts WHERE qty IS NOT NULL AND id >= 29500",
	"SELECT id FROM facts WHERE id >= 100 AND id < 130 OR id = 29999",
	"SELECT f.id, d.label FROM facts f JOIN dims d ON f.id = d.key WHERE f.id < 40",
	"SELECT grp, count(*) FROM facts WHERE id >= 15000 AND id < 16000 GROUP BY grp ORDER BY grp",
	"SELECT id FROM facts WHERE id <> 0 AND id < 30",
}

// zoneMapCompare runs every palette query at the given thread counts
// with zone maps on and off and fails on any divergence. Results must be
// identical row for row, including order: skipping only changes which
// segments are materialized, never what the scan returns.
func zoneMapCompare(t *testing.T, db *quack.DB, threadCounts []int) {
	t.Helper()
	for _, threads := range threadCounts {
		mustExec(t, db, fmt.Sprintf("PRAGMA threads=%d", threads))
		for _, q := range zoneMapQueries {
			mustExec(t, db, "PRAGMA zone_maps=0")
			want := queryAll(t, db, q)
			mustExec(t, db, "PRAGMA zone_maps=1")
			got := queryAll(t, db, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("threads=%d query %q diverges with zone maps on:\n got (%d rows): %.300v\nwant (%d rows): %.300v",
					threads, q, len(got), got, len(want), want)
			}
		}
	}
}

// TestZoneMapDifferential fuzzes zone-map segment skipping against the
// no-skipping engine on the in-memory fixture (stats built at append
// time): selective and non-selective predicates at threads 1/2/8 must be
// byte-identical, and the skip counter must actually move.
func TestZoneMapDifferential(t *testing.T) {
	db := differentialDB(t, 1)
	skippedBefore := pragmaInt(t, db, "segments_skipped")
	zoneMapCompare(t, db, []int{1, 2, 8})
	if pragmaInt(t, db, "segments_skipped") == skippedBefore {
		t.Fatal("the selective palette skipped no segments; zone maps are not wired into the scan")
	}

	// With skipping disabled the counter must not move.
	mustExec(t, db, "PRAGMA zone_maps=0")
	before := pragmaInt(t, db, "segments_skipped")
	queryAll(t, db, zoneMapQueries[0])
	if pragmaInt(t, db, "segments_skipped") != before {
		t.Fatal("PRAGMA zone_maps=0 still skipped segments")
	}
	mustExec(t, db, "PRAGMA zone_maps=1")
}

// TestZoneMapDifferentialReopen checkpoints the fixture into a database
// file, reopens it cold and repeats the differential: the zone maps now
// come from the catalog (SetSegmentStats at open), and the compressed
// per-segment payloads are refuted without being decoded. EXPLAIN right
// after the cold open must already report skips — before any column
// chain has been read — proving the stats were loaded, not recomputed.
func TestZoneMapDifferentialReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zones.qdb")
	db, err := quack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE facts (id BIGINT, grp VARCHAR, qty BIGINT, price DOUBLE, flag BOOLEAN)")
	app, err := db.Appender("facts")
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"north", "south", "east", "west", "emea", "apac"}
	const rows = 30_000
	for i := 0; i < rows; i++ {
		var grp any = groups[(i*7)%len(groups)]
		var qty any = int64((i * 13) % 500)
		var price any = float64((i*31)%1000) / 4
		if i%97 == 0 {
			grp = nil
		}
		if i%89 == 0 {
			qty = nil
		}
		if i%83 == 0 {
			price = nil
		}
		if err := app.AppendRow(int64(i), grp, qty, price, i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE dims (key BIGINT, label VARCHAR)")
	mustExec(t, db, "INSERT INTO dims SELECT id, grp FROM facts WHERE id < 64")
	if err := db.Close(); err != nil { // checkpoint persists stats into the catalog
		t.Fatal(err)
	}

	db, err = quack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Pin skipping on: the CI differential matrix also runs this suite
	// with QUACK_DISABLE_ZONEMAPS=1 as the session default.
	mustExec(t, db, "PRAGMA zone_maps=1")

	// Cold: EXPLAIN consults only catalog-loaded stats; no chain reads.
	readsBefore := blocksRead(t, db)
	skipped, total := explainSkips(t, db, "EXPLAIN SELECT id FROM facts WHERE id >= 29000")
	if got := blocksRead(t, db); got != readsBefore {
		t.Fatalf("EXPLAIN read %d blocks; zone-map stats are being recomputed instead of loaded from the catalog", got-readsBefore)
	}
	if total == 0 || skipped*10 < total*9 {
		t.Fatalf("cold EXPLAIN reports %d/%d segments skipped, want >90%%", skipped, total)
	}

	skippedBefore := pragmaInt(t, db, "segments_skipped")
	zoneMapCompare(t, db, []int{1, 2, 8})
	if pragmaInt(t, db, "segments_skipped") == skippedBefore {
		t.Fatal("post-reopen palette skipped no segments")
	}
}

// TestZoneMapExplainMatchesSequential pins the EXPLAIN surface: the
// pushed-predicate text and the segments-skipped fraction for a
// clustered-range predicate over 1M rows, where zone maps must refute
// more than 90% of the segments.
func TestZoneMapExplainMatchesSequential(t *testing.T) {
	db := openMem(t)
	// Pin skipping on: the CI differential matrix also runs this suite
	// with QUACK_DISABLE_ZONEMAPS=1 as the session default.
	mustExec(t, db, "PRAGMA zone_maps=1")
	mustExec(t, db, "CREATE TABLE seq (id BIGINT, v BIGINT)")
	app, err := db.Appender("seq")
	if err != nil {
		t.Fatal(err)
	}
	const rows = 1_000_000
	for i := 0; i < rows; i++ {
		if err := app.AppendRow(int64(i), int64(i%977)); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	lines := queryAll(t, db, "EXPLAIN SELECT v FROM seq WHERE id >= 500000 AND id < 510000")
	var note string
	for _, l := range lines {
		if strings.HasPrefix(l[0], "NOTE: SCAN seq zone filters:") {
			note = l[0]
		}
	}
	if note == "" {
		t.Fatalf("EXPLAIN has no zone-filter note:\n%v", lines)
	}
	if !strings.Contains(note, "zone filters: id>=500000 AND id<510000;") {
		t.Fatalf("pushed-predicate text changed: %q", note)
	}
	skipped, total := parseSkipNote(t, note)
	if want := (rows + 1023) / 1024; total != want {
		t.Fatalf("note reports %d segments, table has %d", total, want)
	}
	if skipped*10 < total*9 {
		t.Fatalf("clustered 1%% range skipped only %d/%d segments, want >90%%", skipped, total)
	}

	// The ~1% range must also come back identical with skipping off —
	// and the sequential (threads=1) engine is the baseline.
	q := "SELECT count(*), sum(v) FROM seq WHERE id >= 500000 AND id < 510000"
	mustExec(t, db, "PRAGMA threads=1")
	mustExec(t, db, "PRAGMA zone_maps=0")
	want := queryAll(t, db, q)
	mustExec(t, db, "PRAGMA zone_maps=1")
	for _, threads := range []int{1, 2, 8} {
		mustExec(t, db, fmt.Sprintf("PRAGMA threads=%d", threads))
		if got := queryAll(t, db, q); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("threads=%d: skipped scan diverges: got %v want %v", threads, got, want)
		}
	}

	// With zone maps off the note disappears.
	mustExec(t, db, "PRAGMA zone_maps=0")
	for _, l := range queryAll(t, db, "EXPLAIN SELECT v FROM seq WHERE id = 7") {
		if strings.Contains(l[0], "zone filters") {
			t.Fatalf("zone-filter note still present with zone_maps=0: %q", l[0])
		}
	}
	mustExec(t, db, "PRAGMA zone_maps=1")
}

var skipNoteRE = regexp.MustCompile(`segments skipped: (\d+)/(\d+)$`)

func parseSkipNote(t *testing.T, note string) (skipped, total int) {
	t.Helper()
	m := skipNoteRE.FindStringSubmatch(note)
	if m == nil {
		t.Fatalf("note %q has no segments-skipped suffix", note)
	}
	skipped, _ = strconv.Atoi(m[1])
	total, _ = strconv.Atoi(m[2])
	return skipped, total
}

func explainSkips(t *testing.T, db *quack.DB, explain string) (skipped, total int) {
	t.Helper()
	for _, l := range queryAll(t, db, explain) {
		if strings.Contains(l[0], "segments skipped:") {
			return parseSkipNote(t, l[0])
		}
	}
	t.Fatalf("no segments-skipped note in %q output", explain)
	return 0, 0
}

var blocksReadRE = regexp.MustCompile(`blocks read (\d+)`)

func blocksRead(t *testing.T, db *quack.DB) int64 {
	t.Helper()
	rows := queryAll(t, db, "PRAGMA database_size")
	m := blocksReadRE.FindStringSubmatch(rows[0][0])
	if m == nil {
		t.Fatalf("PRAGMA database_size output %q", rows[0][0])
	}
	n, _ := strconv.ParseInt(m[1], 10, 64)
	return n
}
