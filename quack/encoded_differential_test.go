package quack_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/quack"
)

// Predicate palette for the encoded-execution fuzz. The fixture is
// built by encodedExecFixture below: cold segments hold
// dictionary-encoded grp, FOR/RLE-packed id/qty and raw doubles, so
// these exercise every kernel — dictionary equality and inequality
// (including a value absent from some dictionaries), FOR-domain range
// rewrites whose constants land inside, below and above the packed
// domain, RLE run short-circuits over qty, double comparisons against
// INTEGER and DOUBLE columns, NULL tests, and shapes the kernels must
// decline (OR, joins) without changing results.
var encodedExecQueries = []string{
	"SELECT id, grp, qty FROM facts WHERE id >= 4000 AND id < 4100",
	"SELECT count(*), sum(qty) FROM facts WHERE id < 600",
	"SELECT count(*) FROM facts WHERE id >= 29900",
	"SELECT id FROM facts WHERE id = 12345",
	"SELECT count(*) FROM facts WHERE id <> 17",
	"SELECT count(*) FROM facts WHERE grp = 'emea'",
	"SELECT count(*) FROM facts WHERE grp <> 'north'",
	"SELECT count(*) FROM facts WHERE grp = 'nowhere'",
	"SELECT count(*) FROM facts WHERE grp > 'south'",
	"SELECT count(*), sum(id) FROM facts WHERE qty = 250",
	"SELECT count(*) FROM facts WHERE qty >= 490",
	"SELECT count(*) FROM facts WHERE qty < 2.5",
	"SELECT count(*) FROM facts WHERE price > 249.0",
	"SELECT count(*) FROM facts WHERE price <= 0.25",
	"SELECT count(*) FROM facts WHERE grp IS NULL",
	"SELECT count(*) FROM facts WHERE qty IS NOT NULL AND id >= 29000",
	"SELECT count(*) FROM facts WHERE grp = 'apac' AND qty > 100 AND id < 20000",
	"SELECT id FROM facts WHERE id >= 100 AND id < 130 OR id = 29999",
	"SELECT f.id, d.label FROM facts f JOIN dims d ON f.id = d.key WHERE f.id < 40",
	"SELECT grp, count(*) FROM facts WHERE id >= 15000 AND id < 16000 GROUP BY grp ORDER BY grp",
}

// encodedExecFixture builds and checkpoints the mixed-type fixture,
// returning the database path. Closing compresses every segment.
func encodedExecFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "encexec.qdb")
	db, err := quack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE facts (id BIGINT, grp VARCHAR, qty INTEGER, price DOUBLE, flag BOOLEAN)")
	app, err := db.Appender("facts")
	if err != nil {
		t.Fatal(err)
	}
	groups := []string{"north", "south", "east", "west", "emea", "apac"}
	const rows = 30_000
	for i := 0; i < rows; i++ {
		var grp any = groups[(i*7)%len(groups)]
		var qty any = int64((i / 31) % 500) // runs of 31 → RLE-friendly
		var price any = float64((i*31)%1000) / 4
		if i%97 == 0 {
			grp = nil
		}
		if i%89 == 0 {
			qty = nil
		}
		if i%83 == 0 {
			price = nil
		}
		if err := app.AppendRow(int64(i), grp, qty, price, i%3 == 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE dims (key BIGINT, label VARCHAR)")
	mustExec(t, db, "INSERT INTO dims SELECT id, grp FROM facts WHERE id < 64")
	if err := db.Close(); err != nil { // checkpoint compresses the segments
		t.Fatal(err)
	}
	return path
}

// runEncodedPalette reopens the fixture cold, pins the knobs, runs the
// whole palette at one thread count and returns every result set plus
// the encoded-segment counter delta. A fresh open per leg matters: a
// decoded scan installs materialized columns (a column is encoded or
// decoded, never both), so running the disabled leg first would leave
// nothing for the enabled leg to execute encoded.
func runEncodedPalette(t *testing.T, path string, threads int, encodedExec bool) (results [][][]string, encodedSegs int64) {
	t.Helper()
	db, err := quack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Pin the knobs: the CI differential matrix also runs this suite
	// with QUACK_DISABLE_ZONEMAPS=1 / QUACK_DISABLE_ENCODED_EXEC=1 as
	// session defaults, and encoded execution rides on the zone-filter
	// push-down.
	mustExec(t, db, "PRAGMA zone_maps=1")
	if encodedExec {
		mustExec(t, db, "PRAGMA encoded_exec=1")
	} else {
		mustExec(t, db, "PRAGMA encoded_exec=0")
	}
	mustExec(t, db, fmt.Sprintf("PRAGMA threads=%d", threads))
	before := pragmaInt(t, db, "segments_encoded")
	for _, q := range encodedExecQueries {
		results = append(results, queryAll(t, db, q))
	}
	return results, pragmaInt(t, db, "segments_encoded") - before
}

// TestEncodedExecDifferential checkpoints a mixed-type fixture and, per
// thread count, replays the palette against two cold opens — encoded
// execution enabled vs. disabled. Results must be byte-identical row
// for row: the selection kernels change which bytes are inspected,
// never what the scan returns. The encoded-segment counter must move
// only on the enabled legs.
func TestEncodedExecDifferential(t *testing.T) {
	path := encodedExecFixture(t)
	for _, threads := range []int{1, 2, 8} {
		got, encOn := runEncodedPalette(t, path, threads, true)
		want, encOff := runEncodedPalette(t, path, threads, false)
		for i, q := range encodedExecQueries {
			if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
				t.Errorf("threads=%d query %q diverges with encoded execution on:\n got (%d rows): %.300v\nwant (%d rows): %.300v",
					threads, q, len(got[i]), got[i], len(want[i]), want[i])
			}
		}
		if encOn == 0 {
			t.Fatalf("threads=%d: the palette executed no segment encoded; kernels are not wired into the scan", threads)
		}
		if encOff != 0 {
			t.Fatalf("threads=%d: PRAGMA encoded_exec=0 still executed %d segments encoded", threads, encOff)
		}
	}
}

// TestEncodedExecExplainAndWrites pins the observability surface and
// the write interaction on a single connection: EXPLAIN (which stays
// passive and never loads column chains) reports the encoded split once
// segments are resident, the rows_encoded_selected counter moves, and
// an UPDATE — which materializes its segments — steps encoded execution
// aside without changing what a subsequent scan sees.
func TestEncodedExecExplainAndWrites(t *testing.T) {
	path := encodedExecFixture(t)
	db, err := quack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "PRAGMA zone_maps=1")
	mustExec(t, db, "PRAGMA encoded_exec=1")

	queryAll(t, db, "SELECT count(*) FROM facts WHERE grp = 'emea'")
	if pragmaInt(t, db, "segments_encoded") == 0 {
		t.Fatal("dictionary predicate executed no segment encoded")
	}
	if pragmaInt(t, db, "rows_encoded_selected") == 0 {
		t.Fatal("encoded execution selected no rows")
	}
	var note string
	for _, l := range queryAll(t, db, "EXPLAIN SELECT count(*) FROM facts WHERE grp = 'emea'") {
		if strings.HasPrefix(l[0], "NOTE: SCAN facts encoded execution:") {
			note = l[0]
		}
	}
	if note == "" {
		t.Fatal("EXPLAIN has no encoded-execution note for a dictionary predicate over resident segments")
	}

	// Writes materialize their segments; encoded execution must step
	// aside without changing results.
	mustExec(t, db, "UPDATE facts SET qty = 999 WHERE id >= 4000 AND id < 4010")
	mustExec(t, db, "PRAGMA encoded_exec=0")
	want := queryAll(t, db, "SELECT count(*), sum(qty) FROM facts WHERE qty = 999")
	mustExec(t, db, "PRAGMA encoded_exec=1")
	got := queryAll(t, db, "SELECT count(*), sum(qty) FROM facts WHERE qty = 999")
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("post-update scan diverges: got %v want %v", got, want)
	}
}
