package quack_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/quack"
)

// differentialDB builds a multi-segment fixture (tens of segments, so
// parallel scans really fan out) used by every differential test. The
// data is deterministic, NULL-bearing, and skewed enough to exercise
// group-by, join and sort edge cases.
func differentialDB(t *testing.T, threads int) *quack.DB {
	return differentialDBWith(t, quack.WithThreads(threads))
}

// differentialDBWith is differentialDB with arbitrary open options — no
// options means the engine-wide default thread count applies
// (QUACK_THREADS, then GOMAXPROCS), which is what the CI differential
// matrix varies.
func differentialDBWith(t *testing.T, opts ...quack.Option) *quack.DB {
	t.Helper()
	db, err := quack.Open(":memory:", opts...)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })

	mustExec(t, db, "CREATE TABLE facts (id BIGINT, grp VARCHAR, qty BIGINT, price DOUBLE, flag BOOLEAN)")
	app, err := db.Appender("facts")
	if err != nil {
		t.Fatalf("appender: %v", err)
	}
	groups := []string{"north", "south", "east", "west", "emea", "apac"}
	const rows = 30_000 // ~30 segments
	for i := 0; i < rows; i++ {
		var grp any = groups[(i*7)%len(groups)]
		var qty any = int64((i * 13) % 500)
		var price any = float64((i*31)%1000) / 4
		var flag any = i%3 == 0
		if i%97 == 0 {
			grp = nil
		}
		if i%89 == 0 {
			qty = nil
		}
		if i%83 == 0 {
			price = nil
		}
		if err := app.AppendRow(int64(i), grp, qty, price, flag); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatalf("close appender: %v", err)
	}

	mustExec(t, db, "CREATE TABLE dims (key BIGINT, label VARCHAR)")
	dapp, err := db.Appender("dims")
	if err != nil {
		t.Fatalf("appender: %v", err)
	}
	for i := 0; i < 5_000; i++ {
		var label any = fmt.Sprintf("label-%d", i%700)
		if i%101 == 0 {
			label = nil
		}
		if err := dapp.AppendRow(int64(i*3), label); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := dapp.Close(); err != nil {
		t.Fatalf("close appender: %v", err)
	}
	return db
}

// differentialQueries covers every query shape of sql_test.go: filters,
// projections, group-by aggregation (global, grouped, HAVING), joins
// (inner, left, expression keys, non-equi, three-way), sorts, limits
// and UNION ALL.
var differentialQueries = []string{
	// Scans, filters, projections.
	"SELECT id, qty * 2, price + 1.5 FROM facts WHERE qty > 250",
	"SELECT id FROM facts WHERE grp IS NULL",
	"SELECT id, flag FROM facts WHERE flag AND id % 7 = 0",
	"SELECT id FROM facts WHERE grp LIKE '%ea%' AND price IS NOT NULL",
	"SELECT CASE WHEN qty > 400 THEN 'hot' WHEN qty > 200 THEN 'warm' ELSE 'cold' END, id FROM facts WHERE id < 5000",
	// Aggregation: global, grouped, expression groups, HAVING.
	"SELECT count(*), count(qty), sum(qty), avg(price), min(price), max(qty) FROM facts",
	"SELECT grp, count(*), sum(qty), avg(price) FROM facts GROUP BY grp",
	"SELECT id % 10, count(*), max(price) FROM facts GROUP BY 1",
	"SELECT grp, count(*) FROM facts GROUP BY grp HAVING count(*) > 4000",
	"SELECT count(*) FROM facts WHERE qty IS NULL",
	"SELECT grp, count(DISTINCT flag) FROM facts GROUP BY grp",
	"SELECT sum(DISTINCT qty % 5) FROM facts",
	// High-cardinality grouping (3750 groups): under the CI matrix's
	// QUACK_MEMORY_LIMIT leg this is the query that pushes the
	// aggregation into its partition-spilling path.
	"SELECT id - id % 8, count(*), sum(price), min(qty) FROM facts GROUP BY 1",
	// Joins.
	"SELECT count(*), sum(qty) FROM facts JOIN dims ON id = key",
	"SELECT grp, count(*) FROM facts JOIN dims ON id = key GROUP BY grp",
	"SELECT count(*) FROM facts LEFT JOIN dims ON id = key WHERE label IS NULL",
	"SELECT count(*) FROM facts JOIN dims ON id + 1 = key + 1 AND flag",
	"SELECT count(*) FROM facts a JOIN facts b ON a.id = b.id + 6000",
	"SELECT count(*) FROM dims a JOIN dims b ON a.label = b.label",
	"SELECT count(*) FROM dims a, dims b WHERE a.key < b.key AND a.key > 14500",
	// Sorts and limits.
	"SELECT id, qty FROM facts WHERE id % 11 = 0 ORDER BY qty DESC, id",
	"SELECT price FROM facts ORDER BY price NULLS FIRST LIMIT 40",
	"SELECT id FROM facts WHERE qty > 490 ORDER BY id LIMIT 25 OFFSET 10",
	"SELECT id FROM facts WHERE id < 3000 LIMIT 17",
	// Union.
	"SELECT id FROM facts WHERE id < 1030 UNION ALL SELECT key FROM dims WHERE key < 90 ORDER BY 1",
	// Window functions (sorted partitions, frames, ranking, lag/lead).
	"SELECT id, row_number() OVER (PARTITION BY grp ORDER BY qty, id) FROM facts WHERE id < 9000",
	"SELECT id, sum(price) OVER (PARTITION BY grp ORDER BY id) FROM facts WHERE id % 3 = 0",
	"SELECT grp, rank() OVER (ORDER BY count(*) DESC, grp) FROM facts GROUP BY grp",
	"SELECT id, avg(qty) OVER (ORDER BY id ROWS BETWEEN 4 PRECEDING AND CURRENT ROW) FROM facts WHERE id < 5000",
	"SELECT id, lag(qty, 2) OVER (PARTITION BY flag ORDER BY id) FROM facts WHERE id < 4000 ORDER BY id",
}

// TestParallelMatchesSequential is the differential guarantee of the
// morsel-driven engine: for every query shape, WithThreads(n) must be
// row-for-row identical — including row order — to WithThreads(1).
func TestParallelMatchesSequential(t *testing.T) {
	seq := differentialDB(t, 1)
	for _, threads := range []int{2, 4, 8} {
		par := differentialDB(t, threads)
		for _, q := range differentialQueries {
			want := queryAll(t, seq, q)
			got := queryAll(t, par, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("threads=%d query %q diverges:\n got (%d rows): %.300v\nwant (%d rows): %.300v",
					threads, q, len(got), got, len(want), want)
			}
		}
	}
}

// TestDifferentialDefaultThreads runs every differential query on a
// database opened WITHOUT an explicit thread count, so the engine-wide
// default applies — QUACK_THREADS in the CI matrix, GOMAXPROCS
// otherwise — and compares against the single-threaded baseline. This
// is the test that makes the matrix legs genuinely different
// configurations.
func TestDifferentialDefaultThreads(t *testing.T) {
	seq := differentialDB(t, 1)
	def := differentialDBWith(t)
	for _, q := range differentialQueries {
		want := queryAll(t, seq, q)
		got := queryAll(t, def, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("default-thread query %q diverges:\n got (%d rows): %.300v\nwant (%d rows): %.300v",
				q, len(got), got, len(want), want)
		}
	}
}

// TestPragmaThreadsSwitchesEngine re-runs the differential suite on ONE
// database, flipping PRAGMA threads between queries — the two engines
// must agree on identical storage, and the pragma must be readable.
func TestPragmaThreadsSwitchesEngine(t *testing.T) {
	db := differentialDB(t, 4)
	mustExec(t, db, "PRAGMA threads=7")
	if got := queryAll(t, db, "PRAGMA threads"); got[0][0] != "7" {
		t.Fatalf("PRAGMA threads readback = %v", got)
	}
	for _, q := range differentialQueries {
		mustExec(t, db, "PRAGMA threads=1")
		want := queryAll(t, db, q)
		mustExec(t, db, "PRAGMA threads=6")
		got := queryAll(t, db, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("query %q diverges across PRAGMA threads:\n got: %.300v\nwant: %.300v", q, got, want)
		}
	}
}

// TestParallelSeesOwnTransactionWrites: a parallel scan must
// reconstruct the same MVCC snapshot as the sequential one, including
// the transaction's own uncommitted writes and deletes.
func TestParallelSeesOwnTransactionWrites(t *testing.T) {
	db := differentialDB(t, 4)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Rollback()
	if _, err := tx.Exec("UPDATE facts SET qty = 999999 WHERE id % 500 = 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM facts WHERE id % 501 = 0"); err != nil {
		t.Fatal(err)
	}
	run := func(threads int) [][]string {
		tx.SetThreads(threads)
		rows, err := tx.Query("SELECT grp, count(*), sum(qty) FROM facts GROUP BY grp")
		if err != nil {
			t.Fatal(err)
		}
		var out [][]string
		for rows.Next() {
			row := make([]string, len(rows.Columns()))
			for i := range row {
				row[i] = rows.Value(i).String()
			}
			out = append(out, row)
		}
		return out
	}
	want := run(1)
	got := run(8)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("snapshot diverges:\n got: %v\nwant: %v", got, want)
	}
	// The uncommitted writes must be visible inside the transaction.
	tx.SetThreads(8)
	rows, err := tx.Query("SELECT count(*) FROM facts WHERE qty = 999999")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n == 0 {
		t.Fatal("parallel scan does not see own writes")
	}
}

// TestParallelQueryErrorsPropagate: a runtime error inside a worker
// (modulo by zero mid-pipeline) must surface as a query error at every
// thread count without hanging or leaking goroutines.
func TestParallelQueryErrorsPropagate(t *testing.T) {
	for _, threads := range []int{1, 4} {
		db := differentialDB(t, threads)
		if _, err := db.Query("SELECT id % (id - id) FROM facts"); err == nil {
			t.Fatalf("threads=%d: modulo by zero did not error", threads)
		}
		// The database must remain usable after the failure.
		got := queryAll(t, db, "SELECT count(*) FROM facts")
		if len(got) != 1 {
			t.Fatalf("threads=%d: post-error query broken: %v", threads, got)
		}
	}
}

// TestAggSpillSurfaced pins the visibility of budgeted aggregation:
// under an enforced memory_limit a grouped aggregation spills
// partition-wise state runs — the database counts spill events and
// bytes (PRAGMA agg_spill_partitions / agg_spilled_bytes), EXPLAIN
// calls the behaviour out, and the deprecated fallback counter reads 0
// (the one-worker degraded mode is gone; embedders' dashboards keep
// parsing an integer for one release).
func TestAggSpillSurfaced(t *testing.T) {
	// The budget sits well above the floor (the in-flight morsels'
	// distinct groups, which can never spill) and well below the total
	// aggregate state (~7MB for 40k distinct groups), so spilling is
	// certain without starving the accumulation itself.
	db, err := quack.Open(":memory:", quack.WithThreads(4), quack.WithMemoryLimit(2<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (g BIGINT, v BIGINT)")
	app, err := db.Appender("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40_000; i++ {
		if err := app.AppendRow(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	const agg = "SELECT g, count(*), sum(v) FROM t GROUP BY g"

	if got := queryAll(t, db, "PRAGMA agg_spill_partitions"); got[0][0] != "0" {
		t.Fatalf("spill counter before any aggregation = %s", got[0][0])
	}
	plan := queryAll(t, db, "EXPLAIN "+agg)
	found := false
	for _, row := range plan {
		if strings.Contains(row[0], "aggregation spills partition-wise under memory_limit") {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN does not surface the spill behaviour:\n%v", plan)
	}
	if rows := queryAll(t, db, agg); len(rows) != 40_000 {
		t.Fatalf("aggregation returned %d groups, want 40000", len(rows))
	}
	if got := queryAll(t, db, "PRAGMA agg_spill_partitions"); got[0][0] == "0" {
		t.Fatal("spill counter still 0 after a budgeted aggregation that must spill")
	}
	if got := queryAll(t, db, "PRAGMA agg_spilled_bytes"); got[0][0] == "0" {
		t.Fatal("spilled-bytes counter still 0 after a spilling aggregation")
	}
	// The deprecated fallback counter reads 0 forever.
	if got := queryAll(t, db, "PRAGMA parallel_agg_fallbacks"); got[0][0] != "0" {
		t.Fatalf("deprecated parallel_agg_fallbacks = %s, want 0", got[0][0])
	}

	// Without a memory limit nothing spills and EXPLAIN stays silent.
	db2, err := quack.Open(":memory:", quack.WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// An explicitly unlimited database must ignore any harness-set
	// QUACK_MEMORY_LIMIT; force that regardless of the test environment.
	mustExec(t, db2, "PRAGMA memory_limit=-1")
	mustExec(t, db2, "CREATE TABLE t (g BIGINT, v BIGINT)")
	mustExec(t, db2, "INSERT INTO t VALUES (1, 1), (2, 2)")
	for _, row := range queryAll(t, db2, "EXPLAIN "+agg) {
		if strings.Contains(row[0], "memory_limit") {
			t.Fatalf("unlimited database EXPLAIN mentions spilling: %v", row)
		}
	}
	queryAll(t, db2, agg)
	if got := queryAll(t, db2, "PRAGMA agg_spill_partitions"); got[0][0] != "0" {
		t.Fatalf("unlimited database counted %s spills", got[0][0])
	}
}
