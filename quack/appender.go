package quack

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/txn"
	"repro/internal/vector"
)

// Appender is the bulk-load path (§5/§6): the application fills chunks
// with its data in the engine's native representation and hands them
// over; once a chunk is full it is appended to storage without
// per-value call overhead. One Appender per goroutine.
type Appender struct {
	db     *DB
	entry  *catalog.Table
	tx     *txn.Transaction
	ownTx  bool
	chunk  *vector.Chunk
	closed bool
	rows   int64
}

// Appender opens a bulk appender on a table, running in its own
// transaction that commits on Close.
func (db *DB) Appender(tableName string) (*Appender, error) {
	entry, err := db.core.Catalog().Table(tableName)
	if err != nil {
		return nil, err
	}
	return &Appender{
		db:    db,
		entry: entry,
		tx:    db.core.Txns().Begin(),
		ownTx: true,
		chunk: vector.NewChunk(entry.Types()),
	}, nil
}

// AppendRow appends one row of Go values (same conversions as query
// parameters; nil means NULL).
func (a *Appender) AppendRow(args ...any) error {
	if a.closed {
		return fmt.Errorf("quack: appender is closed")
	}
	if len(args) != len(a.entry.Columns) {
		return fmt.Errorf("quack: AppendRow got %d values for %d columns", len(args), len(a.entry.Columns))
	}
	row := a.chunk.Len()
	a.chunk.SetLen(row + 1)
	for i, arg := range args {
		v, err := toValue(arg)
		if err != nil {
			return err
		}
		cv, err := v.Cast(a.entry.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("quack: column %q: %w", a.entry.Columns[i].Name, err)
		}
		if cv.Null && a.entry.Columns[i].NotNull {
			return fmt.Errorf("quack: NOT NULL constraint violated: column %q", a.entry.Columns[i].Name)
		}
		a.chunk.Cols[i].Set(row, cv)
	}
	a.rows++
	if a.chunk.Len() >= vector.ChunkCapacity {
		return a.flush()
	}
	return nil
}

// AppendChunk hands a full chunk to the engine. The chunk's column
// types must match the table schema exactly; ownership transfers to the
// engine (zero-copy handover).
func (a *Appender) AppendChunk(c *Chunk) error {
	if a.closed {
		return fmt.Errorf("quack: appender is closed")
	}
	want := a.entry.Types()
	got := c.Types()
	if len(got) != len(want) {
		return fmt.Errorf("quack: AppendChunk got %d columns, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("quack: AppendChunk column %d is %s, want %s", i, got[i], want[i])
		}
	}
	if err := a.flush(); err != nil {
		return err
	}
	if err := a.entry.Data.Append(a.tx, c); err != nil {
		return err
	}
	a.logInsert(c)
	a.rows += int64(c.Len())
	return nil
}

func (a *Appender) logInsert(c *Chunk) {
	// Reuse the engine's WAL logger via the internal logger shim.
	a.db.core.LogInsert(a.tx, a.entry.Name, c)
}

func (a *Appender) flush() error {
	if a.chunk.Len() == 0 {
		return nil
	}
	if err := a.entry.Data.Append(a.tx, a.chunk); err != nil {
		return err
	}
	a.logInsert(a.chunk)
	a.chunk = vector.NewChunk(a.entry.Types())
	return nil
}

// Flush appends any buffered rows without committing.
func (a *Appender) Flush() error {
	if a.closed {
		return fmt.Errorf("quack: appender is closed")
	}
	return a.flush()
}

// Rows returns how many rows have been appended so far.
func (a *Appender) Rows() int64 { return a.rows }

// NewChunk returns an empty chunk matching the table schema, for use
// with AppendChunk.
func (a *Appender) NewChunk() *Chunk {
	return vector.NewChunk(a.entry.Types())
}

// Close flushes and commits the appender's transaction.
func (a *Appender) Close() error {
	if a.closed {
		return nil
	}
	if err := a.flush(); err != nil {
		a.closed = true
		a.db.core.Txns().Rollback(a.tx)
		return err
	}
	a.closed = true
	if _, err := a.db.core.Txns().Commit(a.tx); err != nil {
		return err
	}
	return nil
}

// Abort discards all rows appended since Open.
func (a *Appender) Abort() {
	if a.closed {
		return
	}
	a.closed = true
	a.db.core.Txns().Rollback(a.tx)
}
