package quack_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/quack"
)

// connQueryAll is queryAll over a dedicated session.
func connQueryAll(t *testing.T, c *quack.Conn, sql string) [][]string {
	t.Helper()
	rows, err := c.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	var out [][]string
	for rows.Next() {
		row := make([]string, len(rows.Columns()))
		for i := range row {
			row[i] = rows.Value(i).String()
		}
		out = append(out, row)
	}
	return out
}

// diffSessions resolves the concurrent-session count for the
// differential tests: the QUACK_DIFF_SESSIONS environment variable (the
// CI matrix axis), defaulting to 4.
func diffSessions() int {
	if env := os.Getenv("QUACK_DIFF_SESSIONS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return 4
}

// TestConcurrentSessionsMatchesSequential is the serve-mode differential
// guarantee: N sessions running the full query palette concurrently on
// one shared database must each get results byte-identical to the
// single-threaded single-session baseline. Sessions carry different
// scheduler priorities, so the fair-share pool is exercised under skew.
func TestConcurrentSessionsMatchesSequential(t *testing.T) {
	seq := differentialDB(t, 1)
	want := make([][][]string, len(differentialQueries))
	for i, q := range differentialQueries {
		want[i] = queryAll(t, seq, q)
	}

	db := differentialDB(t, 4)
	sessions := diffSessions()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn := db.Conn()
			if _, err := conn.Exec(fmt.Sprintf("PRAGMA priority=%d", 100+(s%4)*100)); err != nil {
				t.Errorf("session %d: %v", s, err)
				return
			}
			// Stagger starting points so sessions collide on different
			// operators at any instant.
			for k := 0; k < len(differentialQueries); k++ {
				i := (k + s) % len(differentialQueries)
				rows, err := conn.Query(differentialQueries[i])
				if err != nil {
					t.Errorf("session %d query %q: %v", s, differentialQueries[i], err)
					return
				}
				var got [][]string
				for rows.Next() {
					row := make([]string, len(rows.Columns()))
					for c := range row {
						row[c] = rows.Value(c).String()
					}
					got = append(got, row)
				}
				if fmt.Sprint(got) != fmt.Sprint(want[i]) {
					t.Errorf("session %d of %d: query %q diverges from sequential:\n got (%d rows): %.300v\nwant (%d rows): %.300v",
						s, sessions, differentialQueries[i], len(got), got, len(want[i]), want[i])
					return
				}
			}
		}(s)
	}
	wg.Wait()
}

// TestGoroutineCountBounded pins the tentpole resource property: the
// engine multiplexes every query over one fixed pool, so 32 concurrent
// sessions add only their own client goroutines — not 32 × threads
// worker pools. The bound is the pool-inclusive baseline plus one
// goroutine per client plus runtime slack; the per-query-pool engine
// this replaced would blow through it several times over.
func TestGoroutineCountBounded(t *testing.T) {
	db, err := quack.Open(":memory:", quack.WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (id BIGINT, g BIGINT, v DOUBLE)")
	app, err := db.Appender("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		if err := app.AppendRow(int64(i), int64(i%97), float64(i%1000)/8); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT g, count(*), sum(v) FROM t GROUP BY g",
		"SELECT id, v FROM t WHERE g = 13 ORDER BY v DESC, id",
		"SELECT count(*) FROM t a JOIN t b ON a.id = b.id + 1 WHERE a.g < 5",
	}
	// Warm up so lazily created runtime goroutines are in the baseline.
	for _, q := range queries {
		queryAll(t, db, q)
	}
	base := runtime.NumGoroutine()

	const sessions = 32
	stopSampler := make(chan struct{})
	maxSeen := base
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stopSampler:
				return
			default:
			}
			if n := runtime.NumGoroutine(); n > maxSeen {
				maxSeen = n
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			conn := db.Conn()
			for k := 0; k < 3; k++ {
				q := queries[(s+k)%len(queries)]
				if _, err := conn.Query(q); err != nil {
					t.Errorf("session %d: %v", s, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(stopSampler)
	<-samplerDone

	// base already includes the 4 pool workers; each session adds its
	// own goroutine, the sampler adds one, and the runtime gets slack.
	allowed := base + sessions + 1 + 16
	if maxSeen > allowed {
		t.Fatalf("peak %d goroutines under %d sessions (baseline %d, allowed %d): queries are spawning per-query workers instead of sharing the pool",
			maxSeen, sessions, base, allowed)
	}
}

// TestPragmaKnobRacesUnderLoad toggles every db-level knob from two
// sessions while others run the differential palette; run under -race
// this is the regression test for torn knob reads, and in any mode the
// query results must stay byte-identical to the sequential baseline
// through every toggle.
func TestPragmaKnobRacesUnderLoad(t *testing.T) {
	seq := differentialDB(t, 1)
	queries := []string{
		differentialQueries[6],  // grouped aggregation
		differentialQueries[12], // high-cardinality spill-prone aggregation
		differentialQueries[13], // join
		differentialQueries[20], // sort
	}
	want := make([][][]string, len(queries))
	for i, q := range queries {
		want[i] = queryAll(t, seq, q)
	}

	db := differentialDB(t, 4)
	stop := make(chan struct{})
	var togglers sync.WaitGroup
	toggle := func(stmts []string) {
		defer togglers.Done()
		conn := db.Conn()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := conn.Exec(stmts[i%len(stmts)]); err != nil {
				t.Errorf("toggler: %v", err)
				return
			}
		}
	}
	togglers.Add(2)
	go toggle([]string{
		"PRAGMA zone_maps=0", "PRAGMA zone_maps=1",
		"PRAGMA checksum_verification=0", "PRAGMA checksum_verification=1",
		"PRAGMA priority=250",
	})
	go toggle([]string{
		"PRAGMA threads=1", "PRAGMA threads=6", "PRAGMA threads=3",
		"PRAGMA memory_limit=-1", "PRAGMA memory_limit='64MB'",
		"PRAGMA memory_share=0.5",
	})

	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			conn := db.Conn()
			for k := 0; k < 6; k++ {
				i := (r + k) % len(queries)
				got := connQueryAll(t, conn, queries[i])
				if fmt.Sprint(got) != fmt.Sprint(want[i]) {
					t.Errorf("query %q diverged while knobs toggled:\n got: %.300v\nwant: %.300v", queries[i], got, want[i])
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	togglers.Wait()
	// The database must come back to a known state for later asserts.
	mustExec(t, db, "PRAGMA zone_maps=1")
	mustExec(t, db, "PRAGMA memory_limit=-1")
}

// TestAdmissionPragmas pins the admission surface: readbacks, input
// validation, and that budgeted queries run to completion through the
// admission gate.
func TestAdmissionPragmas(t *testing.T) {
	db, err := quack.Open(":memory:", quack.WithThreads(2), quack.WithMemoryLimit(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	conn := db.Conn()
	if got := connQueryAll(t, conn, "PRAGMA priority"); got[0][0] != "100" {
		t.Fatalf("default priority readback = %v", got)
	}
	if got := connQueryAll(t, conn, "PRAGMA memory_share"); got[0][0] != "1" {
		t.Fatalf("default memory_share readback = %v", got)
	}
	if got := connQueryAll(t, conn, "PRAGMA admission_queue_depth"); got[0][0] != "32" {
		t.Fatalf("default admission_queue_depth readback = %v", got)
	}
	for _, bad := range []string{
		"PRAGMA priority=0", "PRAGMA priority=-5",
		"PRAGMA memory_share=0", "PRAGMA memory_share=1.5",
		"PRAGMA admission_queue_depth=-1",
	} {
		if _, err := conn.Exec(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	for _, set := range []string{
		"PRAGMA priority=300", "PRAGMA memory_share=0.5", "PRAGMA admission_queue_depth=0",
	} {
		if _, err := conn.Exec(set); err != nil {
			t.Fatalf("%q: %v", set, err)
		}
	}
	if got := connQueryAll(t, conn, "PRAGMA priority"); got[0][0] != "300" {
		t.Fatalf("priority readback after set = %v", got)
	}
	// Queries still run through the gate with the custom settings.
	if _, err := conn.Exec("CREATE TABLE t (v BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	if got := connQueryAll(t, conn, "SELECT sum(v) FROM t"); got[0][0] != "6" {
		t.Fatalf("budgeted query via conn = %v", got)
	}
}

// TestRebuildStatsRefutesDeletedRange is the zone-map maintenance
// satellite: runtime stats only ever widen, so a committed mass delete
// leaves the vacated range unskippable until PRAGMA rebuild_stats
// recomputes exact per-segment statistics — after which scans refute
// the deleted range, on warm in-memory segments and on cold compressed
// ones alike, without changing any result.
func TestRebuildStatsRefutesDeletedRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rebuild.qdb")
	db, err := quack.Open(path, quack.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "PRAGMA zone_maps=1")
	mustExec(t, db, "CREATE TABLE t (id BIGINT, v BIGINT)")
	app, err := db.Appender("t")
	if err != nil {
		t.Fatal(err)
	}
	const rows = 30_000
	for i := 0; i < rows; i++ {
		if err := app.AppendRow(int64(i), int64(i%991)); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	if n := mustExec(t, db, "DELETE FROM t WHERE id >= 20000"); n != 10_000 {
		t.Fatalf("deleted %d rows", n)
	}

	const probe = "EXPLAIN SELECT v FROM t WHERE id >= 25000"
	const q = "SELECT count(*), sum(v) FROM t WHERE id >= 25000"
	const liveQ = "SELECT count(*), sum(v) FROM t WHERE id >= 10000 AND id < 15000"
	wantLive := queryAll(t, db, liveQ)

	// Before the rebuild the stats still cover the deleted values.
	skippedBefore, total := explainSkips(t, db, probe)
	mustExec(t, db, "PRAGMA rebuild_stats='t'")
	skippedAfter, _ := explainSkips(t, db, probe)
	if skippedAfter != total {
		t.Fatalf("after rebuild %d/%d segments skipped for the fully-deleted range, want all (before: %d)",
			skippedAfter, total, skippedBefore)
	}
	if skippedAfter <= skippedBefore {
		t.Fatalf("rebuild did not tighten stats: %d skipped before, %d after", skippedBefore, skippedAfter)
	}
	if got := queryAll(t, db, q); got[0][0] != "0" {
		t.Fatalf("deleted range returned rows after rebuild: %v", got)
	}
	if got := queryAll(t, db, liveQ); fmt.Sprint(got) != fmt.Sprint(wantLive) {
		t.Fatalf("live range changed after rebuild: got %v want %v", got, wantLive)
	}

	// Unknown table errors; missing argument errors.
	if _, err := db.Exec("PRAGMA rebuild_stats='nope'"); err == nil {
		t.Fatal("rebuild_stats of unknown table accepted")
	}
	if _, err := db.Exec("PRAGMA rebuild_stats"); err == nil {
		t.Fatal("rebuild_stats without a table accepted")
	}

	// Cold path: reopen from the checkpoint so segments come back in
	// compressed form, delete, rebuild — the recompute must read the
	// encoded payloads transiently and still refute the vacated range.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = quack.Open(path, quack.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "PRAGMA zone_maps=1")
	if n := mustExec(t, db, "DELETE FROM t WHERE id >= 10000"); n != 10_000 {
		t.Fatalf("deleted %d rows after reopen", n)
	}
	mustExec(t, db, "PRAGMA rebuild_stats='t'")
	skippedCold, totalCold := explainSkips(t, db, "EXPLAIN SELECT v FROM t WHERE id >= 15000")
	if skippedCold != totalCold {
		t.Fatalf("cold rebuild skipped %d/%d segments for the deleted range, want all", skippedCold, totalCold)
	}
	if got := queryAll(t, db, "SELECT count(*) FROM t"); got[0][0] != "10000" {
		t.Fatalf("row count after cold delete = %v", got)
	}
}

// TestAggWorkerClampNote pins the budget-floor fix: a tight memory
// budget no longer hard-fails parallel aggregation at high thread
// counts — the worker count is clamped to what the budget admits,
// EXPLAIN says so, and the results match the unlimited engine exactly.
func TestAggWorkerClampNote(t *testing.T) {
	mk := func(opts ...quack.Option) *quack.DB {
		db, err := quack.Open(":memory:", opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		mustExec(t, db, "CREATE TABLE t (g BIGINT, v BIGINT)")
		app, err := db.Appender("t")
		if err != nil {
			t.Fatal(err)
		}
		// Dividing (not modding) the sequential key bounds the distinct
		// groups per morsel, like the exec spill fixtures: the clamp
		// formula still assumes the worst case and kicks in, while the
		// clamped execution has spillable state to stay inside the
		// budget. (All-distinct morsels can exceed even a one-worker
		// in-flight floor — a documented residual, not this test.)
		for i := 0; i < 30_000; i++ {
			if err := app.AppendRow(int64(i/8), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := app.Close(); err != nil {
			t.Fatal(err)
		}
		return db
	}
	const agg = "SELECT g, count(*), sum(v) FROM t GROUP BY g"

	free := mk(quack.WithThreads(8))
	mustExec(t, free, "PRAGMA memory_limit=-1")
	want := queryAll(t, free, agg)
	for _, row := range queryAll(t, free, "EXPLAIN "+agg) {
		if strings.Contains(row[0], "admits") {
			t.Fatalf("unlimited engine shows a clamp note: %q", row[0])
		}
	}

	tight := mk(quack.WithThreads(8), quack.WithMemoryLimit(1<<20))
	var note string
	for _, row := range queryAll(t, tight, "EXPLAIN "+agg) {
		if strings.Contains(row[0], "memory_limit admits") {
			note = row[0]
		}
	}
	if note == "" {
		t.Fatal("tight budget produced no worker-clamp NOTE in EXPLAIN")
	}
	if !strings.Contains(note, "of 8 aggregation workers") {
		t.Fatalf("clamp note text changed: %q", note)
	}
	got := queryAll(t, tight, agg)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("clamped aggregation diverges from unlimited engine:\n got (%d rows)\nwant (%d rows)", len(got), len(want))
	}
}
