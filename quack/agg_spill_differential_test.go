package quack_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/quack"
)

// aggSpillBudgetCase is one leg of the budgeted-aggregation fuzz: a
// byte budget plus the thread counts it can legally run at. States
// touched by a worker's in-flight morsel can never spill, so a budget
// must exceed workers x (distinct groups per morsel) x state size —
// the cases pair tiny budgets with low per-morsel cardinality and give
// the high-cardinality queries proportionally more room.
type aggSpillBudgetCase struct {
	budget  string
	threads []int
	queries []string
}

// Query palettes by per-morsel group cardinality. The fixture's id is
// append-ordered, so id - id%512 introduces ~2 groups per 1024-row
// morsel (59 total) and id - id%4 ~256 per morsel (7500 total); grp is
// duplicate-heavy (6 values + NULL) and recurs in every morsel.
var (
	aggSpillDupHeavy = []string{
		"SELECT grp, count(*), sum(price), min(price), max(qty) FROM facts GROUP BY grp",
		"SELECT grp, sum(DISTINCT qty % 3), count(DISTINCT flag) FROM facts GROUP BY grp",
		"SELECT count(*), sum(price), sum(qty) FROM facts",
		"SELECT grp, count(*) FROM facts WHERE qty IS NOT NULL GROUP BY grp",
	}
	aggSpillLowCard = []string{
		"SELECT id - id % 512, count(*), sum(price), sum(DISTINCT qty % 3) FROM facts GROUP BY 1",
		"SELECT id - id % 512, avg(price), count(qty) FROM facts GROUP BY 1",
	}
	aggSpillHighCard = []string{
		"SELECT id - id % 4, count(*), sum(price), min(qty) FROM facts GROUP BY 1",
		"SELECT id - id % 4, count(DISTINCT flag), sum(qty) FROM facts GROUP BY 1",
	}
)

var aggSpillBudgetCases = []aggSpillBudgetCase{
	// 4KB: multi-round spills over 59 groups arriving a couple per
	// morsel; duplicate-heavy queries ride along (they fit, but the
	// budget-enforced accounting and shedding paths still run).
	{"4KB", []int{1, 2}, append(append([]string{}, aggSpillDupHeavy...), aggSpillLowCard...)},
	// 16KB clears the 8-thread floor for the low-cardinality palette.
	{"16KB", []int{1, 2, 8}, append(append([]string{}, aggSpillDupHeavy...), aggSpillLowCard...)},
	// 256KB: ~2.3MB of high-cardinality state spills in many rounds.
	{"256KB", []int{1, 2}, aggSpillHighCard},
	// 2MB clears the 8-thread floor for the high-cardinality palette.
	{"2MB", []int{1, 2, 8}, aggSpillHighCard},
}

// TestAggSpillDifferentialBudgets fuzzes budgeted aggregation against
// the unlimited sequential engine: byte budgets from 4KB up (forcing
// multi-round partition spills), duplicate-heavy and NULL group keys,
// DISTINCT aggregates and DOUBLE sums, at threads 1/2/8 — results must
// be row-for-row identical, including order, and the spill counters
// must actually move.
func TestAggSpillDifferentialBudgets(t *testing.T) {
	ref := differentialDB(t, 1)
	mustExec(t, ref, "PRAGMA memory_limit=-1") // immune to QUACK_MEMORY_LIMIT
	want := map[string][][]string{}
	queries := map[string]bool{}
	for _, c := range aggSpillBudgetCases {
		for _, q := range c.queries {
			if !queries[q] {
				queries[q] = true
				want[q] = queryAll(t, ref, q)
			}
		}
	}

	db := differentialDB(t, 1)
	spillsBefore := pragmaInt(t, db, "agg_spill_partitions")
	for _, c := range aggSpillBudgetCases {
		mustExec(t, db, "PRAGMA memory_limit='"+c.budget+"'")
		for _, threads := range c.threads {
			mustExec(t, db, fmt.Sprintf("PRAGMA threads=%d", threads))
			for _, q := range c.queries {
				got := queryAll(t, db, q)
				if fmt.Sprint(got) != fmt.Sprint(want[q]) {
					t.Errorf("budget=%s threads=%d query %q diverges:\n got (%d rows): %.300v\nwant (%d rows): %.300v",
						c.budget, threads, q, len(got), got, len(want[q]), want[q])
				}
			}
		}
	}
	if spills := pragmaInt(t, db, "agg_spill_partitions") - spillsBefore; spills == 0 {
		t.Fatal("the budget matrix produced no partition spills; the fixture no longer exercises the spill path")
	}
	if bytes := pragmaInt(t, db, "agg_spilled_bytes"); bytes == 0 {
		t.Fatal("agg_spilled_bytes still 0 after the spilling matrix")
	}
}

func pragmaInt(t *testing.T, db *quack.DB, name string) int64 {
	t.Helper()
	rows := queryAll(t, db, "PRAGMA "+name)
	n, err := strconv.ParseInt(rows[0][0], 10, 64)
	if err != nil {
		t.Fatalf("PRAGMA %s returned %q: %v", name, rows[0][0], err)
	}
	return n
}

// TestAggSpillDifferential1MRows is the acceptance bar for the
// partitioned spilling aggregation: a GROUP BY over 1M rows with
// memory_limit set far below the ~27MB of aggregate state completes at
// threads 1/2/8 with results identical to the unlimited sequential run,
// and demonstrably spills. (That the budgeted build still fans out
// across workers is pinned white-box by TestParAggSpillUsesWorkers in
// internal/exec, via per-worker row counters as in PR 4.)
func TestAggSpillDifferential1MRows(t *testing.T) {
	const rows = 1_000_000
	db, err := quack.Open(":memory:")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "PRAGMA memory_limit=-1")
	mustExec(t, db, "CREATE TABLE big (id BIGINT, v BIGINT, price DOUBLE)")
	app, err := db.Appender("big")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := app.AppendRow(int64(i), int64((i*13)%1000), float64((i*31)%997)/8); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT id - id % 8, count(*), sum(v), sum(price), min(v) FROM big GROUP BY 1"

	mustExec(t, db, "PRAGMA threads=1")
	want := queryAll(t, db, q)
	if len(want) != rows/8 {
		t.Fatalf("reference run returned %d groups, want %d", len(want), rows/8)
	}

	mustExec(t, db, "PRAGMA memory_limit='8MB'")
	for _, threads := range []int{1, 2, 8} {
		mustExec(t, db, fmt.Sprintf("PRAGMA threads=%d", threads))
		before := pragmaInt(t, db, "agg_spill_partitions")
		got := queryAll(t, db, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("threads=%d: budgeted 1M-row aggregation diverges from the unlimited sequential run", threads)
		}
		if pragmaInt(t, db, "agg_spill_partitions") == before {
			t.Fatalf("threads=%d: 8MB budget over ~27MB of state did not spill", threads)
		}
	}
}
