package quack_test

import (
	"fmt"
	"testing"
	"time"

	"repro/quack"
)

// TestInsertSelectSelfReferencing: INSERT INTO t SELECT ... FROM t used
// to never terminate — the scan kept discovering the segments its own
// insert appended (rows of the same transaction are snapshot-visible).
// With the segment list and row counts snapshotted at scan open, the
// statement must insert exactly the pre-existing rows, once.
func TestInsertSelectSelfReferencing(t *testing.T) {
	db, err := quack.Open(":memory:")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (id BIGINT, tag VARCHAR)")
	app, err := db.Appender("t")
	if err != nil {
		t.Fatal(err)
	}
	const pre = 3_500 // spans several segments, last one partially full
	for i := 0; i < pre; i++ {
		if err := app.AppendRow(int64(i), fmt.Sprintf("tag-%d", i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	type res struct {
		n   int64
		err error
	}
	done := make(chan res, 1)
	go func() {
		n, err := db.Exec("INSERT INTO t SELECT id + 1000000, tag FROM t")
		done <- res{n, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("self-referencing insert: %v", r.err)
		}
		if r.n != pre {
			t.Fatalf("inserted %d rows, want exactly the %d pre-existing", r.n, pre)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("self-referencing INSERT ... SELECT did not terminate")
	}

	got := queryAll(t, db, "SELECT count(*), min(id), max(id) FROM t")
	want := fmt.Sprintf("[%d 0 %d]", 2*pre, 1000000+pre-1)
	if fmt.Sprint(got[0]) != want {
		t.Fatalf("post-insert state %v, want %s", got[0], want)
	}
	// The doubled table must again self-insert exactly once (regression
	// for the snapshot covering partially-filled trailing segments).
	if n := mustExec(t, db, "INSERT INTO t SELECT id, tag FROM t WHERE id < 1000000"); n != pre {
		t.Fatalf("filtered self-insert affected %d rows, want %d", n, pre)
	}
}

// TestInsertSelectSelfReferencingInTxn: the same statement inside an
// explicit transaction, whose snapshot also covers the transaction's own
// earlier (uncommitted) inserts.
func TestInsertSelectSelfReferencingInTxn(t *testing.T) {
	db, err := quack.Open(":memory:")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (4)"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tx.Exec("INSERT INTO t SELECT v + 10 FROM t")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("self-referencing insert in txn did not terminate")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, db, "SELECT v FROM t ORDER BY v")
	want := "[[1] [2] [3] [4] [11] [12] [13] [14]]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v, want %s", got, want)
	}
}
