package quack_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/quack"
)

// TestInsertSelectSelfReferencing: INSERT INTO t SELECT ... FROM t used
// to never terminate — the scan kept discovering the segments its own
// insert appended (rows of the same transaction are snapshot-visible).
// With the segment list and row counts snapshotted at scan open, the
// statement must insert exactly the pre-existing rows, once.
func TestInsertSelectSelfReferencing(t *testing.T) {
	db, err := quack.Open(":memory:")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (id BIGINT, tag VARCHAR)")
	app, err := db.Appender("t")
	if err != nil {
		t.Fatal(err)
	}
	const pre = 3_500 // spans several segments, last one partially full
	for i := 0; i < pre; i++ {
		if err := app.AppendRow(int64(i), fmt.Sprintf("tag-%d", i%7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	type res struct {
		n   int64
		err error
	}
	done := make(chan res, 1)
	go func() {
		n, err := db.Exec("INSERT INTO t SELECT id + 1000000, tag FROM t")
		done <- res{n, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("self-referencing insert: %v", r.err)
		}
		if r.n != pre {
			t.Fatalf("inserted %d rows, want exactly the %d pre-existing", r.n, pre)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("self-referencing INSERT ... SELECT did not terminate")
	}

	got := queryAll(t, db, "SELECT count(*), min(id), max(id) FROM t")
	want := fmt.Sprintf("[%d 0 %d]", 2*pre, 1000000+pre-1)
	if fmt.Sprint(got[0]) != want {
		t.Fatalf("post-insert state %v, want %s", got[0], want)
	}
	// The doubled table must again self-insert exactly once (regression
	// for the snapshot covering partially-filled trailing segments).
	if n := mustExec(t, db, "INSERT INTO t SELECT id, tag FROM t WHERE id < 1000000"); n != pre {
		t.Fatalf("filtered self-insert affected %d rows, want %d", n, pre)
	}
}

// TestInsertSelectSelfReferencingInTxn: the same statement inside an
// explicit transaction, whose snapshot also covers the transaction's own
// earlier (uncommitted) inserts.
func TestInsertSelectSelfReferencingInTxn(t *testing.T) {
	db, err := quack.Open(":memory:")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (2), (3)")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (4)"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tx.Exec("INSERT INTO t SELECT v + 10 FROM t")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("self-referencing insert in txn did not terminate")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, db, "SELECT v FROM t ORDER BY v")
	want := "[[1] [2] [3] [4] [11] [12] [13] [14]]"
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v, want %s", got, want)
	}
}

// TestDMLDifferentialThreads: DML statements now build their input
// scans on the parallel pipeline; the resulting table state — including
// physical row order, which INSERT inherits from the ordered merge —
// must be identical to the single-threaded engine's.
func TestDMLDifferentialThreads(t *testing.T) {
	build := func(threads int) *quack.DB {
		db, err := quack.Open(":memory:", quack.WithThreads(threads))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		mustExec(t, db, "CREATE TABLE src (id BIGINT, grp VARCHAR, val DOUBLE)")
		app, err := db.Appender("src")
		if err != nil {
			t.Fatal(err)
		}
		groups := []string{"a", "b", "c", "d"}
		for i := 0; i < 20_000; i++ {
			var g any = groups[i%len(groups)]
			if i%53 == 0 {
				g = nil
			}
			if err := app.AppendRow(int64(i), g, float64(i%701)/3); err != nil {
				t.Fatal(err)
			}
		}
		if err := app.Close(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, db, "CREATE TABLE dst (id BIGINT, val DOUBLE)")
		// Parallel scan feeding INSERT ... SELECT.
		mustExec(t, db, "INSERT INTO dst SELECT id, val FROM src WHERE val > 100 AND grp IS NOT NULL")
		// Self-referencing insert over the parallel scan snapshot.
		mustExec(t, db, "INSERT INTO dst SELECT id + 1000000, val FROM dst WHERE id % 7 = 0")
		// Bulk UPDATE and DELETE with parallel filter scans.
		mustExec(t, db, "UPDATE dst SET val = val * 2 WHERE id % 3 = 0")
		mustExec(t, db, "DELETE FROM dst WHERE val > 400")
		return db
	}
	seq := build(1)
	for _, threads := range []int{4, 8} {
		par := build(threads)
		for _, q := range []string{
			"SELECT * FROM dst", // physical row order must match
			"SELECT count(*), sum(val), min(id), max(id) FROM dst",
		} {
			want := queryAll(t, seq, q)
			got := queryAll(t, par, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("threads=%d %q diverges (got %d rows, want %d)", threads, q, len(got), len(want))
			}
		}
	}
}

// TestBigInsertUnderOneSecond is the end-to-end regression for the bulk
// VALUES path: parsing, binding and executing a 10k-row INSERT must
// finish in well under a second.
func TestBigInsertUnderOneSecond(t *testing.T) {
	db, err := quack.Open(":memory:")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, "CREATE TABLE big (a BIGINT, b VARCHAR, c DOUBLE)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	const rows = 10_000
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, 'name-%d', %d.25)", i, i, i)
	}
	start := time.Now()
	n := mustExec(t, db, sb.String())
	elapsed := time.Since(start)
	if n != rows {
		t.Fatalf("inserted %d rows, want %d", n, rows)
	}
	if elapsed > time.Second {
		t.Fatalf("10k-row INSERT took %v, want < 1s", elapsed)
	}
	t.Logf("10k-row INSERT executed in %v", elapsed)
}
