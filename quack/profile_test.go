package quack_test

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/quack"
)

// profNode mirrors the JSON operator tree of PRAGMA last_profile.
type profNode struct {
	Name        string      `json:"name"`
	Rows        int64       `json:"rows"`
	Morsels     int64       `json:"morsels"`
	SegsScanned int64       `json:"segments_scanned"`
	SegsSkipped int64       `json:"segments_skipped"`
	SpillBytes  int64       `json:"spill_bytes"`
	Children    []*profNode `json:"children"`
}

// profDoc mirrors the JSON envelope of PRAGMA last_profile.
type profDoc struct {
	Query      string    `json:"query"`
	Threads    int       `json:"threads"`
	Rows       int64     `json:"rows"`
	SpillBytes int64     `json:"spill_bytes"`
	ExecuteNs  int64     `json:"execute_ns"`
	Plan       *profNode `json:"plan"`
}

// lastProfile runs q with profiling on and returns the parsed profile.
func lastProfile(t *testing.T, c *quack.Conn, q string) *profDoc {
	t.Helper()
	if _, err := c.Exec("PRAGMA profiling=1"); err != nil {
		t.Fatalf("enable profiling: %v", err)
	}
	rows, err := c.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	for rows.NextChunk() != nil {
	}
	pr, err := c.Query("PRAGMA last_profile")
	if err != nil {
		t.Fatalf("last_profile: %v", err)
	}
	if !pr.Next() {
		t.Fatal("last_profile returned no rows")
	}
	var doc profDoc
	if err := json.Unmarshal([]byte(pr.Value(0).String()), &doc); err != nil {
		t.Fatalf("last_profile JSON: %v", err)
	}
	if doc.Plan == nil {
		t.Fatalf("last_profile has no plan tree: %s", pr.Value(0).String())
	}
	return &doc
}

// flattenRows renders the tree as "name=rows" in preorder — the
// determinism fingerprint compared across thread counts and budgets.
func flattenRows(n *profNode, out *[]string) {
	*out = append(*out, fmt.Sprintf("%s=%d", n.Name, n.Rows))
	for _, c := range n.Children {
		flattenRows(c, out)
	}
}

// sumTree totals one numeric field over the whole operator tree.
func sumTree(n *profNode, f func(*profNode) int64) int64 {
	total := f(n)
	for _, c := range n.Children {
		total += sumTree(c, f)
	}
	return total
}

// profilePalette exercises every profiled operator family: parallel
// scan+filter pipelines, hash join, grouped aggregation (including the
// high-cardinality shape that spills under a budget), external sort
// and a window function.
var profilePalette = []string{
	"SELECT grp, count(*), sum(qty) FROM facts JOIN dims ON id = key GROUP BY grp",
	"SELECT id, price FROM facts WHERE qty > 100 ORDER BY price, id",
	"SELECT id - id % 8, count(*), sum(price) FROM facts GROUP BY 1",
	"SELECT id, sum(qty) OVER (PARTITION BY grp ORDER BY id) FROM facts WHERE id < 8000",
}

// TestProfileRowDeterminism pins the profiler to the engine's core
// invariant: per-operator row counts are identical at every thread
// count, with and without a memory budget — parallelism and spilling
// may change timings, never what flowed through the plan.
func TestProfileRowDeterminism(t *testing.T) {
	type config struct {
		name    string
		threads int
		budget  string // PRAGMA memory_limit after the fixture is built
	}
	configs := []config{
		{"t1", 1, ""},
		{"t2", 2, ""},
		{"t8", 8, ""},
		{"t8-budget", 8, "2MB"},
	}
	want := make(map[string][]string) // query → fingerprint from config 0
	for _, cfg := range configs {
		db := differentialDBWith(t, quack.WithThreads(cfg.threads))
		if cfg.budget != "" {
			mustExec(t, db, "PRAGMA memory_limit='"+cfg.budget+"'")
		}
		conn := db.Conn()
		for _, q := range profilePalette {
			doc := lastProfile(t, conn, q)
			if doc.Threads != cfg.threads {
				t.Errorf("%s %q: profile says %d threads, want %d", cfg.name, q, doc.Threads, cfg.threads)
			}
			var got []string
			flattenRows(doc.Plan, &got)
			if base, ok := want[q]; !ok {
				want[q] = got
			} else if strings.Join(base, "\n") != strings.Join(got, "\n") {
				t.Errorf("%s %q: operator rows diverged\nbase: %v\n got: %v", cfg.name, q, base, got)
			}
			if doc.Plan.Rows != doc.Rows {
				t.Errorf("%s %q: root operator rows %d != result rows %d", cfg.name, q, doc.Plan.Rows, doc.Rows)
			}
		}
	}
}

// TestProfileRegistryReconciliation cross-checks the two observability
// surfaces against each other: the registry deltas a profiled query
// causes must equal the totals summed over its profile tree (scan and
// spill counters feed both through the same increments).
func TestProfileRegistryReconciliation(t *testing.T) {
	db := differentialDBWith(t, quack.WithThreads(4))
	conn := db.Conn()
	// A filter zone maps can refute: some segments skip, the rest scan.
	q := "SELECT count(*), sum(qty) FROM facts WHERE id < 7000"
	m0 := db.Metrics()
	doc := lastProfile(t, conn, q)
	m1 := db.Metrics()

	scanned := sumTree(doc.Plan, func(n *profNode) int64 { return n.SegsScanned })
	skipped := sumTree(doc.Plan, func(n *profNode) int64 { return n.SegsSkipped })
	if d := m1["scan_segments_scanned_total"] - m0["scan_segments_scanned_total"]; d != scanned {
		t.Errorf("registry says %d segments scanned, profile says %d", d, scanned)
	}
	if d := m1["scan_segments_skipped_total"] - m0["scan_segments_skipped_total"]; d != skipped {
		t.Errorf("registry says %d segments skipped, profile says %d", d, skipped)
	}
	if scanned == 0 {
		t.Error("profiled scan reports zero segments scanned")
	}
	if skipped == 0 {
		t.Error("zone-mappable filter skipped no segments")
	}
	if d := m1["query_count"] - m0["query_count"]; d != 1 {
		t.Errorf("query histogram advanced by %d, want 1", d)
	}
	if m1["sched_steps_total"] <= m0["sched_steps_total"] {
		t.Error("scheduler steps did not advance across a parallel query")
	}
}

// TestProfileSpillReconciliation forces the aggregation spill path and
// checks the bytes agree between profile tree, profile envelope and
// registry delta.
func TestProfileSpillReconciliation(t *testing.T) {
	db := differentialDBWith(t, quack.WithThreads(2))
	mustExec(t, db, "PRAGMA memory_limit='256KB'")
	conn := db.Conn()
	q := "SELECT id - id % 4, count(*), sum(price), min(qty) FROM facts GROUP BY 1"
	m0 := db.Metrics()
	doc := lastProfile(t, conn, q)
	m1 := db.Metrics()
	treeSpill := sumTree(doc.Plan, func(n *profNode) int64 { return n.SpillBytes })
	if treeSpill != doc.SpillBytes {
		t.Errorf("tree spill %dB != envelope spill %dB", treeSpill, doc.SpillBytes)
	}
	if treeSpill == 0 {
		t.Error("256KB budget over ~7500 groups spilled nothing; fixture no longer forces the spill path")
	}
	regSpill := (m1["agg_spill_bytes_total"] - m0["agg_spill_bytes_total"]) +
		(m1["sort_spill_bytes_total"] - m0["sort_spill_bytes_total"])
	if regSpill != doc.SpillBytes {
		t.Errorf("registry spill delta %dB != profile spill %dB", regSpill, doc.SpillBytes)
	}
}

// TestExplainAnalyze smoke-tests the text surface over a join+agg+sort
// plan: the tree renders with measured row counts, the phase and totals
// lines are present, and the reported row total matches a plain run.
func TestExplainAnalyze(t *testing.T) {
	db := differentialDBWith(t, quack.WithThreads(4))
	conn := db.Conn()
	q := "SELECT grp, count(*) AS n, sum(qty) FROM facts JOIN dims ON id = key GROUP BY grp ORDER BY grp"
	direct, err := conn.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := direct.NumRows()

	res, err := conn.Query("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatalf("explain analyze: %v", err)
	}
	var lines []string
	for res.Next() {
		var s string
		if err := res.Scan(&s); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, s)
	}
	text := strings.Join(lines, "\n")
	for _, wantPiece := range []string{"rows=", "morsels=", "phases: parse=", "totals: threads="} {
		if !strings.Contains(text, wantPiece) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", wantPiece, text)
		}
	}
	// The totals line reports the executed statement's real row count.
	if want := fmt.Sprintf("rows=%d", wantRows); !strings.Contains(text, want) {
		t.Errorf("EXPLAIN ANALYZE totals missing %q:\n%s", want, text)
	}
	// The profile of the analyzed run is retrievable afterwards.
	pr, err := conn.Query("PRAGMA last_profile")
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Next() {
		t.Fatal("no last_profile after EXPLAIN ANALYZE")
	}
	var doc profDoc
	if err := json.Unmarshal([]byte(pr.Value(0).String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Rows != wantRows {
		t.Errorf("profile rows %d, want %d", doc.Rows, wantRows)
	}
	if !strings.Contains(doc.Query, "EXPLAIN ANALYZE") {
		t.Errorf("profile query text %q does not carry the statement", doc.Query)
	}
}

// TestSlowQueryLog exercises the WithLogger sink end to end: below the
// threshold nothing is emitted, at threshold 0 every statement logs one
// well-formed JSON line.
func TestSlowQueryLog(t *testing.T) {
	var mu sync.Mutex
	var logLines []string
	db := differentialDBWith(t, quack.WithThreads(2), quack.WithLogger(func(line string) {
		mu.Lock()
		logLines = append(logLines, line)
		mu.Unlock()
	}))
	conn := db.Conn()

	run := func(q string) {
		t.Helper()
		rows, err := conn.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for rows.NextChunk() != nil {
		}
	}
	run("SELECT count(*) FROM facts") // default: disabled, no line
	mu.Lock()
	if len(logLines) != 0 {
		t.Fatalf("slow log emitted %d lines while disabled", len(logLines))
	}
	mu.Unlock()

	if _, err := conn.Exec("PRAGMA log_min_duration_ms=0"); err != nil {
		t.Fatal(err)
	}
	run("SELECT count(*) FROM facts WHERE qty > 100")
	mu.Lock()
	defer mu.Unlock()
	if len(logLines) != 1 {
		t.Fatalf("slow log emitted %d lines at threshold 0, want 1", len(logLines))
	}
	var rec struct {
		Query      string `json:"query"`
		DurationMs *int64 `json:"duration_ms"`
		Rows       int64  `json:"rows"`
		SpillBytes int64  `json:"spill_bytes"`
	}
	if err := json.Unmarshal([]byte(logLines[0]), &rec); err != nil {
		t.Fatalf("slow log line is not JSON: %v (%q)", err, logLines[0])
	}
	if !strings.Contains(rec.Query, "qty > 100") {
		t.Errorf("slow log query %q does not carry the statement", rec.Query)
	}
	if rec.DurationMs == nil {
		t.Error("slow log line missing duration_ms")
	}
	if rec.Rows != 1 {
		t.Errorf("slow log rows %d, want 1", rec.Rows)
	}
}

// TestMetricsPragmas covers the remaining observability PRAGMAs: the
// registry snapshot, the memory gauges, and the profiling readbacks —
// plus agreement between legacy counter PRAGMAs and registry cells.
func TestMetricsPragmas(t *testing.T) {
	db := differentialDBWith(t, quack.WithThreads(2))
	conn := db.Conn()
	if _, err := conn.Exec("PRAGMA profiling=1"); err != nil {
		t.Fatal(err)
	}
	rows, err := conn.Query("SELECT grp, count(*) FROM facts WHERE id < 9000 GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	for rows.NextChunk() != nil {
	}

	// PRAGMA metrics: (name, value) rows containing the fleet of
	// engine-wide cells, and agreeing with the Go-API snapshot.
	snap := db.Metrics()
	res, err := conn.Query("PRAGMA metrics")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for res.Next() {
		var name string
		var val int64
		if err := res.Scan(&name, &val); err != nil {
			t.Fatal(err)
		}
		got[name] = val
	}
	for _, name := range []string{
		"sched_steps_total", "sched_step_wait_p99_ns", "sched_runnable_depth",
		"admission_admitted_total", "admission_queue_depth",
		"pool_reserved_bytes", "pool_peak_bytes", "wal_bytes",
		"scan_segments_scanned_total", "scan_segments_skipped_total",
		"scan_bytes_decompressed_total", "agg_spill_bytes_total",
		"sort_spill_bytes_total", "query_count", "query_p50_ns",
		"checkpoint_count",
	} {
		if _, ok := got[name]; !ok {
			t.Errorf("PRAGMA metrics missing %q", name)
		}
		if _, ok := snap[name]; !ok {
			t.Errorf("DB.Metrics missing %q", name)
		}
	}
	if got["query_count"] < 1 {
		t.Errorf("query_count = %d after a query", got["query_count"])
	}

	// Legacy counter PRAGMAs read the same cells as the registry.
	readPragma := func(name string) int64 {
		t.Helper()
		r, err := conn.Query("PRAGMA " + name)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Next() {
			t.Fatalf("PRAGMA %s returned no rows", name)
		}
		n, err := strconv.ParseInt(r.Value(0).String(), 10, 64)
		if err != nil {
			t.Fatalf("PRAGMA %s: %v", name, err)
		}
		return n
	}
	fresh := db.Metrics()
	if v, reg := readPragma("segments_scanned"), fresh["scan_segments_scanned_total"]; v != reg {
		t.Errorf("PRAGMA segments_scanned %d != registry %d", v, reg)
	}
	if v, reg := readPragma("segments_skipped"), fresh["scan_segments_skipped_total"]; v != reg {
		t.Errorf("PRAGMA segments_skipped %d != registry %d", v, reg)
	}
	if v, reg := readPragma("agg_spilled_bytes"), fresh["agg_spill_bytes_total"]; v != reg {
		t.Errorf("PRAGMA agg_spilled_bytes %d != registry %d", v, reg)
	}
	if v, reg := readPragma("agg_spill_partitions"), fresh["agg_spill_partitions_total"]; v != reg {
		t.Errorf("PRAGMA agg_spill_partitions %d != registry %d", v, reg)
	}

	// Memory gauges: peak bounds usage from above.
	usage, peak := readPragma("memory_usage"), readPragma("memory_peak")
	if usage < 0 || peak < usage {
		t.Errorf("memory gauges inconsistent: usage=%d peak=%d", usage, peak)
	}
	if used := readPragma("memory_used"); used != usage {
		t.Errorf("memory_used %d != memory_usage %d", used, usage)
	}

	// Profiling readbacks.
	if r := queryAll(t, db, "PRAGMA profiling"); r[0][0] != "0" {
		t.Errorf("fresh session PRAGMA profiling = %q, want 0", r[0][0])
	}
	if r := queryAll(t, db, "PRAGMA last_profile"); r[0][0] != "{}" {
		t.Errorf("fresh session PRAGMA last_profile = %q, want {}", r[0][0])
	}
}
