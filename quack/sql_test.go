package quack_test

import (
	"fmt"
	"strings"
	"testing"
)

// assertQuery runs sql and compares the printed result rows.
func assertQuery(t *testing.T, db interface {
	Query(string, ...any) (rowsIface, error)
}, sql string, want [][]string) {
	t.Helper()
	_ = db
}

type rowsIface interface{}

// checkQ is the workhorse: run a query on a fresh fixture DB and compare.
func checkQ(t *testing.T, setup []string, q string, want [][]string) {
	t.Helper()
	db := openMem(t)
	for _, s := range setup {
		mustExec(t, db, s)
	}
	got := queryAll(t, db, q)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("query %q:\n got: %v\nwant: %v", q, got, want)
	}
}

var fixture = []string{
	"CREATE TABLE nums (i INTEGER, b BIGINT, d DOUBLE, s VARCHAR, f BOOLEAN)",
	`INSERT INTO nums VALUES
		(1, 10, 1.5, 'alpha', TRUE),
		(2, 20, 2.5, 'beta', FALSE),
		(3, 30, 3.5, 'gamma', TRUE),
		(NULL, NULL, NULL, NULL, NULL)`,
}

func TestArithmeticSemantics(t *testing.T) {
	checkQ(t, fixture, "SELECT i + b, i - 1, i * 2, b / 4, b % 7 FROM nums WHERE i = 3",
		[][]string{{"33", "2", "6", "7.5", "2"}})
	// Division always yields DOUBLE.
	checkQ(t, fixture, "SELECT 7 / 2", [][]string{{"3.5"}})
	// NULL propagates through arithmetic.
	checkQ(t, fixture, "SELECT count(*) FROM nums WHERE i + 1 IS NULL AND s IS NULL", [][]string{{"1"}})
}

func TestDivisionByZeroIsError(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if _, err := db.Query("SELECT v % 0 FROM t"); err == nil {
		t.Fatal("modulo by zero succeeded")
	}
	// Integer division by zero errors; double division yields +Inf.
	if _, err := db.Query("SELECT CAST(1 AS INTEGER) / 0"); err == nil {
		// 1/0: "/" promotes to double → +Inf, not an error.
		t.Log("double division by zero tolerated (IEEE semantics)")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	// NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL otherwise.
	checkQ(t, fixture, "SELECT count(*) FROM nums WHERE f AND i > 0", [][]string{{"2"}})
	checkQ(t, fixture, "SELECT count(*) FROM nums WHERE f OR i = 2", [][]string{{"3"}})
	// NOT NULL is NULL → row filtered out.
	checkQ(t, fixture, "SELECT count(*) FROM nums WHERE NOT (i IS NULL OR i < 10)", [][]string{{"0"}})
}

func TestComparisonsAndBetween(t *testing.T) {
	checkQ(t, fixture, "SELECT s FROM nums WHERE i BETWEEN 2 AND 3 ORDER BY i",
		[][]string{{"beta"}, {"gamma"}})
	checkQ(t, fixture, "SELECT s FROM nums WHERE i NOT BETWEEN 2 AND 3",
		[][]string{{"alpha"}})
	checkQ(t, fixture, "SELECT count(*) FROM nums WHERE d >= 2.5", [][]string{{"2"}})
	checkQ(t, fixture, "SELECT count(*) FROM nums WHERE s <> 'beta'", [][]string{{"2"}})
}

func TestInList(t *testing.T) {
	checkQ(t, fixture, "SELECT s FROM nums WHERE i IN (1, 3) ORDER BY i",
		[][]string{{"alpha"}, {"gamma"}})
	checkQ(t, fixture, "SELECT s FROM nums WHERE i NOT IN (1, 2, 99)",
		[][]string{{"gamma"}})
	// Non-constant IN list falls back to OR chain.
	checkQ(t, fixture, "SELECT s FROM nums WHERE b IN (i * 10) ORDER BY i",
		[][]string{{"alpha"}, {"beta"}, {"gamma"}})
}

func TestLikeSemantics(t *testing.T) {
	checkQ(t, fixture, "SELECT s FROM nums WHERE s LIKE '%a' ORDER BY s",
		[][]string{{"alpha"}, {"beta"}, {"gamma"}})
	checkQ(t, fixture, "SELECT s FROM nums WHERE s LIKE 'a%'", [][]string{{"alpha"}})
	checkQ(t, fixture, "SELECT s FROM nums WHERE s LIKE '%mm%'", [][]string{{"gamma"}})
	checkQ(t, fixture, "SELECT s FROM nums WHERE s LIKE '_eta'", [][]string{{"beta"}})
	checkQ(t, fixture, "SELECT s FROM nums WHERE s NOT LIKE '%a%' ", nil)
}

func TestCaseExpressions(t *testing.T) {
	checkQ(t, fixture,
		"SELECT CASE WHEN i = 1 THEN 'one' WHEN i = 2 THEN 'two' ELSE 'many' END FROM nums WHERE i IS NOT NULL ORDER BY i",
		[][]string{{"one"}, {"two"}, {"many"}})
	// Operand form + missing ELSE yields NULL.
	checkQ(t, fixture,
		"SELECT CASE i WHEN 1 THEN 'one' END FROM nums WHERE i IS NOT NULL ORDER BY i",
		[][]string{{"one"}, {"NULL"}, {"NULL"}})
}

func TestCasts(t *testing.T) {
	checkQ(t, nil, "SELECT CAST('42' AS BIGINT), CAST(1.9 AS INTEGER), CAST(0 AS BOOLEAN), CAST(123 AS VARCHAR)",
		[][]string{{"42", "1", "false", "123"}})
	db := openMem(t)
	if _, err := db.Query("SELECT CAST('duck' AS BIGINT)"); err == nil {
		t.Fatal("bad cast accepted")
	}
	if _, err := db.Query("SELECT CAST(99999999999 AS INTEGER)"); err == nil {
		t.Fatal("overflowing cast accepted")
	}
}

func TestScalarFunctions(t *testing.T) {
	checkQ(t, nil, "SELECT abs(-5), length('hello'), lower('ABC'), upper('abc'), round(2.6)",
		[][]string{{"5", "5", "abc", "ABC", "3"}})
	checkQ(t, nil, "SELECT coalesce(NULL, NULL, 7), coalesce(1, 2), greatest(3, 9, 5), least(3, 9, 5)",
		[][]string{{"7", "1", "9", "3"}})
	checkQ(t, nil, "SELECT substr('embedded', 4), substr('embedded', 1, 5), trim('  x  ')",
		[][]string{{"edded", "embed", "x"}})
	checkQ(t, nil, "SELECT 'a' || 'b' || CAST(7 AS VARCHAR)", [][]string{{"ab7"}})
}

func TestAggregatesOverEmptyAndNulls(t *testing.T) {
	checkQ(t, []string{"CREATE TABLE e (v BIGINT)"},
		"SELECT count(*), count(v), sum(v), avg(v), min(v), max(v) FROM e",
		[][]string{{"0", "0", "NULL", "NULL", "NULL", "NULL"}})
	checkQ(t, fixture, "SELECT count(DISTINCT f) FROM nums", [][]string{{"2"}})
	checkQ(t, fixture, "SELECT sum(DISTINCT i % 2) FROM nums", [][]string{{"1"}})
}

func TestGroupByOrdinalAndAlias(t *testing.T) {
	checkQ(t, fixture, "SELECT f AS flag, count(*) FROM nums WHERE f IS NOT NULL GROUP BY flag ORDER BY 1",
		[][]string{{"false", "1"}, {"true", "2"}})
	checkQ(t, fixture, "SELECT i % 2, count(*) FROM nums WHERE i IS NOT NULL GROUP BY 1 ORDER BY 1",
		[][]string{{"0", "1"}, {"1", "2"}})
}

func TestHaving(t *testing.T) {
	checkQ(t, fixture, "SELECT f, count(*) FROM nums GROUP BY f HAVING count(*) > 1 ORDER BY 1 NULLS FIRST",
		[][]string{{"true", "2"}})
}

func TestOrderByNullsAndDirections(t *testing.T) {
	checkQ(t, fixture, "SELECT i FROM nums ORDER BY i ASC",
		[][]string{{"1"}, {"2"}, {"3"}, {"NULL"}})
	checkQ(t, fixture, "SELECT i FROM nums ORDER BY i DESC",
		[][]string{{"NULL"}, {"3"}, {"2"}, {"1"}})
	checkQ(t, fixture, "SELECT i FROM nums ORDER BY i ASC NULLS FIRST",
		[][]string{{"NULL"}, {"1"}, {"2"}, {"3"}})
	checkQ(t, fixture, "SELECT i FROM nums ORDER BY i DESC NULLS LAST",
		[][]string{{"3"}, {"2"}, {"1"}, {"NULL"}})
}

func TestLimitOffset(t *testing.T) {
	checkQ(t, fixture, "SELECT i FROM nums WHERE i IS NOT NULL ORDER BY i LIMIT 2",
		[][]string{{"1"}, {"2"}})
	checkQ(t, fixture, "SELECT i FROM nums WHERE i IS NOT NULL ORDER BY i LIMIT 2 OFFSET 2",
		[][]string{{"3"}})
	checkQ(t, fixture, "SELECT i FROM nums ORDER BY i LIMIT 0", nil)
}

func TestJoinVarieties(t *testing.T) {
	setup := []string{
		"CREATE TABLE a (x BIGINT)",
		"CREATE TABLE b (y BIGINT)",
		"INSERT INTO a VALUES (1), (2), (3)",
		"INSERT INTO b VALUES (2), (3), (4)",
	}
	checkQ(t, setup, "SELECT x, y FROM a JOIN b ON x = y ORDER BY x",
		[][]string{{"2", "2"}, {"3", "3"}})
	checkQ(t, setup, "SELECT count(*) FROM a CROSS JOIN b", [][]string{{"9"}})
	checkQ(t, setup, "SELECT count(*) FROM a, b WHERE x < y", [][]string{{"6"}})
	// Non-equi join condition takes the nested-loop path.
	checkQ(t, setup, "SELECT x, y FROM a JOIN b ON x > y ORDER BY x, y",
		[][]string{{"3", "2"}})
	// Join keys with expressions.
	checkQ(t, setup, "SELECT x, y FROM a JOIN b ON x + 1 = y ORDER BY x",
		[][]string{{"1", "2"}, {"2", "3"}, {"3", "4"}})
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	setup := []string{
		"CREATE TABLE a (x BIGINT)",
		"CREATE TABLE b (y BIGINT)",
		"INSERT INTO a VALUES (1), (NULL)",
		"INSERT INTO b VALUES (1), (NULL)",
	}
	checkQ(t, setup, "SELECT count(*) FROM a JOIN b ON x = y", [][]string{{"1"}})
	checkQ(t, setup, "SELECT x, y FROM a LEFT JOIN b ON x = y ORDER BY x NULLS FIRST",
		[][]string{{"NULL", "NULL"}, {"1", "1"}})
}

func TestThreeWayJoin(t *testing.T) {
	setup := []string{
		"CREATE TABLE u (uid BIGINT, uname VARCHAR)",
		"CREATE TABLE o (oid BIGINT, ouid BIGINT)",
		"CREATE TABLE p (poid BIGINT, amount BIGINT)",
		"INSERT INTO u VALUES (1,'ann'), (2,'bob')",
		"INSERT INTO o VALUES (10,1), (11,1), (12,2)",
		"INSERT INTO p VALUES (10,100), (11,150), (12,50)",
	}
	checkQ(t, setup, `SELECT uname, sum(amount) FROM u
		JOIN o ON uid = ouid JOIN p ON oid = poid
		GROUP BY uname ORDER BY uname`,
		[][]string{{"ann", "250"}, {"bob", "50"}})
}

func TestUnionAllTypesAligned(t *testing.T) {
	checkQ(t, nil, "SELECT 1 UNION ALL SELECT 2.5 UNION ALL SELECT 3 ORDER BY 1",
		[][]string{{"1"}, {"2.5"}, {"3"}})
}

func TestInsertColumnSubset(t *testing.T) {
	checkQ(t, []string{
		"CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE)",
		"INSERT INTO t (c, a) VALUES (2.5, 7)",
	}, "SELECT a, b, c FROM t", [][]string{{"7", "NULL", "2.5"}})
}

func TestInsertSelect(t *testing.T) {
	checkQ(t, []string{
		"CREATE TABLE src (v BIGINT)",
		"INSERT INTO src VALUES (1), (2), (3)",
		"CREATE TABLE dst (v BIGINT, doubled BIGINT)",
		"INSERT INTO dst SELECT v, v * 2 FROM src WHERE v > 1",
	}, "SELECT v, doubled FROM dst ORDER BY v",
		[][]string{{"2", "4"}, {"3", "6"}})
}

func TestNotNullEnforcement(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT NOT NULL)")
	if _, err := db.Exec("INSERT INTO t VALUES (NULL)"); err == nil {
		t.Fatal("NULL accepted into NOT NULL column")
	}
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if _, err := db.Exec("UPDATE t SET v = NULL"); err == nil {
		t.Fatal("UPDATE to NULL accepted on NOT NULL column")
	}
}

func TestUpdateMultiColumnAndSelfReference(t *testing.T) {
	checkQ(t, []string{
		"CREATE TABLE t (a BIGINT, b BIGINT)",
		"INSERT INTO t VALUES (1, 10), (2, 20)",
		"UPDATE t SET a = b, b = a", // reads old values (Halloween-safe)
	}, "SELECT a, b FROM t ORDER BY b",
		[][]string{{"10", "1"}, {"20", "2"}})
}

func TestDeleteAll(t *testing.T) {
	checkQ(t, []string{
		"CREATE TABLE t (v BIGINT)",
		"INSERT INTO t VALUES (1), (2)",
		"DELETE FROM t",
	}, "SELECT count(*) FROM t", [][]string{{"0"}})
}

func TestCreateTableAsSelect(t *testing.T) {
	checkQ(t, []string{
		"CREATE TABLE t (v BIGINT)",
		"INSERT INTO t VALUES (1), (2), (3)",
		"CREATE TABLE squares AS SELECT v, v * v AS sq FROM t",
	}, "SELECT sq FROM squares ORDER BY v",
		[][]string{{"1"}, {"4"}, {"9"}})
}

func TestDropAndIfExists(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Query("SELECT * FROM t"); err == nil {
		t.Fatal("dropped table still queryable")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS t")
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Fatal("double drop accepted")
	}
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS x (v BIGINT)")
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS x (v BIGINT)")
}

func TestExplainOutput(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (a BIGINT, b BIGINT, c BIGINT)")
	rows := queryAll(t, db, "EXPLAIN SELECT a FROM t WHERE b > 5")
	plan := ""
	for _, r := range rows {
		plan += r[0] + "\n"
	}
	// Filter pushed into the scan, untouched column c pruned away.
	if !strings.Contains(plan, "SCAN t(a, b)") || !strings.Contains(plan, "FILTER") {
		t.Fatalf("unexpected plan:\n%s", plan)
	}
	if strings.Contains(plan, "c") {
		t.Fatalf("column c not pruned:\n%s", plan)
	}
}

func TestPragmas(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "PRAGMA memory_limit='64MB'")
	got := queryAll(t, db, "PRAGMA memory_limit")
	if got[0][0] != fmt.Sprint(64<<20) {
		t.Fatalf("memory_limit = %v", got)
	}
	if _, err := db.Exec("PRAGMA nonsense=1"); err == nil {
		t.Fatal("unknown pragma accepted")
	}
}

func TestScanColumnPruningLoadsOnlyNeeded(t *testing.T) {
	// Regression guard for the paper's partial-column workloads: a
	// query touching one column of a wide table must not error and must
	// produce correct results after reopen (lazy loading path).
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE wide (a BIGINT, b BIGINT, c BIGINT, d BIGINT, e BIGINT)")
	mustExec(t, db, "INSERT INTO wide VALUES (1,2,3,4,5), (10,20,30,40,50)")
	checkRows := queryAll(t, db, "SELECT c FROM wide ORDER BY c")
	if fmt.Sprint(checkRows) != fmt.Sprint([][]string{{"3"}, {"30"}}) {
		t.Fatalf("got %v", checkRows)
	}
}

func TestBigSortSpills(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "PRAGMA memory_limit='4MB'")
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	app, _ := db.Appender("t")
	const n = 300_000
	for i := 0; i < n; i++ {
		app.AppendRow(int64((i * 7919) % n))
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT v FROM t ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	var count int64
	for {
		c := rows.NextChunk()
		if c == nil {
			break
		}
		for _, v := range c.Cols[0].I64[:c.Len()] {
			if v < prev {
				t.Fatalf("out of order: %d after %d", v, prev)
			}
			prev = v
			count++
		}
	}
	if count != n {
		t.Fatalf("sorted %d rows, want %d", count, n)
	}
}
