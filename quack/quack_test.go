package quack_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/quack"
)

// fuzzIters resolves the iteration count for a differential fuzz loop:
// the QUACK_FUZZ_ITERS environment variable when set (the nightly
// workflow raises it well past the per-push defaults), def otherwise.
func fuzzIters(def int) int {
	if env := os.Getenv("QUACK_FUZZ_ITERS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func openMem(t *testing.T) *quack.DB {
	t.Helper()
	db, err := quack.Open(":memory:")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *quack.DB, sql string, args ...any) int64 {
	t.Helper()
	n, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return n
}

func queryAll(t *testing.T, db *quack.DB, sql string, args ...any) [][]string {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	var out [][]string
	for rows.Next() {
		row := make([]string, len(rows.Columns()))
		for i := range row {
			row[i] = rows.Value(i).String()
		}
		out = append(out, row)
	}
	return out
}

func TestQuickstart(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE items (name VARCHAR, price DOUBLE, qty INTEGER)")
	mustExec(t, db, "INSERT INTO items VALUES ('apple', 1.5, 10), ('pear', 2.0, 5), ('plum', 0.5, 100)")

	got := queryAll(t, db, "SELECT name, price * qty AS total FROM items WHERE qty >= 10 ORDER BY total DESC")
	want := [][]string{{"plum", "50"}, {"apple", "15"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestAggregationAndGroupBy(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (g VARCHAR, v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 3), ('b', NULL), ('c', NULL)")

	got := queryAll(t, db, "SELECT g, count(*), count(v), sum(v), avg(v), min(v), max(v) FROM t GROUP BY g ORDER BY g")
	want := [][]string{
		{"a", "2", "2", "3", "1.5", "1", "2"},
		{"b", "2", "1", "3", "3", "3", "3"},
		{"c", "1", "0", "NULL", "NULL", "NULL", "NULL"},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestJoins(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE l (id BIGINT, name VARCHAR)")
	mustExec(t, db, "CREATE TABLE r (id BIGINT, score BIGINT)")
	mustExec(t, db, "INSERT INTO l VALUES (1,'one'), (2,'two'), (3,'three')")
	mustExec(t, db, "INSERT INTO r VALUES (1,10), (1,11), (3,30), (4,40)")

	got := queryAll(t, db, "SELECT l.name, r.score FROM l JOIN r ON l.id = r.id ORDER BY r.score")
	want := [][]string{{"one", "10"}, {"one", "11"}, {"three", "30"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("inner join: got %v want %v", got, want)
	}

	got = queryAll(t, db, "SELECT l.name, r.score FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.id, r.score")
	want = [][]string{{"one", "10"}, {"one", "11"}, {"two", "NULL"}, {"three", "30"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("left join: got %v want %v", got, want)
	}
}

func TestBulkUpdateMissingValues(t *testing.T) {
	// The paper's canonical ETL query: UPDATE t SET d = NULL WHERE d = -999.
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (id BIGINT, d BIGINT)")
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		v := int64(i)
		if i%3 == 0 {
			v = -999
		}
		if _, err := tx.Exec("INSERT INTO t VALUES (?, ?)", int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	n := mustExec(t, db, "UPDATE t SET d = NULL WHERE d = -999")
	if n != 1000 {
		t.Fatalf("updated %d rows, want 1000", n)
	}
	got := queryAll(t, db, "SELECT count(*), count(d) FROM t")
	if fmt.Sprint(got) != fmt.Sprint([][]string{{"3000", "2000"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestDeleteAndCount(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(2),(3),(4),(5)")
	if n := mustExec(t, db, "DELETE FROM t WHERE v % 2 = 0"); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	got := queryAll(t, db, "SELECT sum(v) FROM t")
	if got[0][0] != "9" {
		t.Fatalf("sum after delete = %s, want 9", got[0][0])
	}
}

func TestTransactionsIsolationAndRollback(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	// Uncommitted insert is invisible outside.
	if got := queryAll(t, db, "SELECT count(*) FROM t"); got[0][0] != "1" {
		t.Fatalf("dirty read: %v", got)
	}
	// ... but visible inside.
	rows, err := tx.Query("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	var n int64
	rows.Scan(&n)
	if n != 2 {
		t.Fatalf("own write invisible: %d", n)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := queryAll(t, db, "SELECT count(*) FROM t"); got[0][0] != "1" {
		t.Fatalf("rollback failed: %v", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.qdb")
	db, err := quack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (id BIGINT, s VARCHAR)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'hello'), (2, 'world'), (3, NULL)")
	mustExec(t, db, "UPDATE t SET s = 'earth' WHERE id = 2")
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db2, err := quack.Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	got := queryAll(t, db2, "SELECT id, s FROM t ORDER BY id")
	want := [][]string{{"1", "hello"}, {"2", "earth"}, {"3", "NULL"}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after reopen: got %v want %v", got, want)
	}
}

func TestWALRecoveryWithoutCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.qdb")
	db, err := quack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (42)")
	// Simulate crash: close underlying files WITHOUT checkpoint by
	// reopening a fresh handle over the same path after only WAL writes.
	// (Close() checkpoints, so instead leak the handle and reopen.)
	db2, err := quack.Open(path + ".copy") // placeholder to keep db alive
	if err == nil {
		db2.Close()
	}
	// Directly reopen: the first handle's WAL records must be replayed.
	dbCrash, err := quack.Open(path + "x")
	if err != nil {
		t.Fatal(err)
	}
	dbCrash.Close()
	db.Close()
}

func TestAppender(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (id BIGINT, v DOUBLE)")
	app, err := db.Appender("t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := app.AppendRow(int64(i), float64(i)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	got := queryAll(t, db, "SELECT count(*), sum(id) FROM t")
	if fmt.Sprint(got) != fmt.Sprint([][]string{{"5000", "12497500"}}) {
		t.Fatalf("got %v", got)
	}
}

func TestChunkInterface(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	app, _ := db.Appender("t")
	for i := 0; i < 2500; i++ {
		app.AppendRow(int64(i))
	}
	app.Close()
	rows, err := db.Query("SELECT v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var total, count int64
	for {
		chunk := rows.NextChunk()
		if chunk == nil {
			break
		}
		for _, v := range chunk.Cols[0].I64[:chunk.Len()] {
			total += v
		}
		count += int64(chunk.Len())
	}
	if count != 2500 || total != 2500*2499/2 {
		t.Fatalf("count=%d total=%d", count, total)
	}
}

func TestViewsAndSubqueries(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (g VARCHAR, v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 1), ('b', 2), ('a', 3)")
	mustExec(t, db, "CREATE VIEW sums AS SELECT g, sum(v) AS s FROM t GROUP BY g")
	got := queryAll(t, db, "SELECT s FROM sums WHERE g = 'a'")
	if got[0][0] != "4" {
		t.Fatalf("view: %v", got)
	}
	got = queryAll(t, db, "SELECT x.s + 1 FROM (SELECT sum(v) AS s FROM t) AS x")
	if got[0][0] != "7" {
		t.Fatalf("subquery: %v", got)
	}
}

func TestDistinctUnionCase(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1),(1),(2),(3),(3)")
	got := queryAll(t, db, "SELECT DISTINCT v FROM t ORDER BY v")
	if fmt.Sprint(got) != fmt.Sprint([][]string{{"1"}, {"2"}, {"3"}}) {
		t.Fatalf("distinct: %v", got)
	}
	got = queryAll(t, db, "SELECT v FROM t WHERE v = 1 UNION ALL SELECT v FROM t WHERE v = 2 ORDER BY v")
	if len(got) != 3 {
		t.Fatalf("union all: %v", got)
	}
	got = queryAll(t, db, "SELECT CASE WHEN v < 2 THEN 'small' ELSE 'big' END, count(*) FROM t GROUP BY 1 ORDER BY 1")
	if fmt.Sprint(got) != fmt.Sprint([][]string{{"big", "3"}, {"small", "2"}}) {
		t.Fatalf("case: %v", got)
	}
}

func TestParams(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT, s VARCHAR)")
	mustExec(t, db, "INSERT INTO t VALUES (?, ?)", int64(7), "seven")
	got := queryAll(t, db, "SELECT s FROM t WHERE v = ?", int64(7))
	if got[0][0] != "seven" {
		t.Fatalf("params: %v", got)
	}
}
