package quack_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDashboardScenario reproduces the paper's §2 dashboard workload:
// writer goroutines run bulk ETL updates while reader goroutines run the
// OLAP aggregations that drive visualizations. MVCC must give every
// reader a consistent snapshot without blocking on the writers.
func TestDashboardScenario(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE metrics (id BIGINT, v BIGINT)")
	const rows = 10_000
	app, err := db.Appender("metrics")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		app.AppendRow(int64(i), int64(1))
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}

	// Every committed state has sum(v) == rows * k for some integer k,
	// because each writer transaction increments every row by 1.
	var writers, readers sync.WaitGroup
	var inconsistent atomic.Int64
	var conflicts atomic.Int64
	stop := make(chan struct{})

	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := db.Exec("UPDATE metrics SET v = v + 1")
				if err != nil {
					if isConflict(err) {
						conflicts.Add(1)
						continue
					}
					t.Errorf("writer: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 30; i++ {
				rowsRes, err := db.Query("SELECT sum(v), count(*) FROM metrics")
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				rowsRes.Next()
				var sum, count int64
				if err := rowsRes.Scan(&sum, &count); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if count != rows || sum%rows != 0 {
					inconsistent.Add(1)
					t.Errorf("torn snapshot: sum=%d count=%d", sum, count)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	if inconsistent.Load() > 0 {
		t.Fatalf("%d inconsistent snapshots", inconsistent.Load())
	}
}

func isConflict(err error) bool {
	return err != nil && (errors.Is(err, errConflictProbe) || containsConflict(err.Error()))
}

var errConflictProbe = errors.New("never")

func containsConflict(s string) bool {
	return len(s) > 0 && (stringContains(s, "conflict"))
}

func stringContains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestWriteWriteConflict verifies first-updater-wins serializability.
func TestWriteWriteConflict(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	tx1, _ := db.Begin()
	tx2, _ := db.Begin()
	if _, err := tx1.Exec("UPDATE t SET v = 10"); err != nil {
		t.Fatal(err)
	}
	_, err := tx2.Exec("UPDATE t SET v = 20")
	if err == nil || !containsConflict(err.Error()) {
		t.Fatalf("expected write-write conflict, got %v", err)
	}
	tx2.Rollback()
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := queryAll(t, db, "SELECT v FROM t"); got[0][0] != "10" {
		t.Fatalf("got %v", got)
	}
}

// TestSnapshotStability: a long-running reader transaction keeps seeing
// its snapshot while writers commit around it.
func TestSnapshotStability(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	mustExec(t, db, "INSERT INTO t VALUES (100)")

	reader, _ := db.Begin()
	readSum := func() string {
		rows, err := reader.Query("SELECT sum(v) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		rows.Next()
		return rows.Value(0).String()
	}
	before := readSum()

	mustExec(t, db, "UPDATE t SET v = 999")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	if after := readSum(); after != before {
		t.Fatalf("snapshot moved: %s -> %s", before, after)
	}
	reader.Rollback()
	if got := queryAll(t, db, "SELECT sum(v) FROM t"); got[0][0] != "1000" {
		t.Fatalf("latest state: %v", got)
	}
}

// TestConcurrentAppenders: bulk appends from several goroutines all
// arrive exactly once.
func TestConcurrentAppenders(t *testing.T) {
	db := openMem(t)
	mustExec(t, db, "CREATE TABLE t (v BIGINT)")
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			app, err := db.Appender("t")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perWorker; i++ {
				if err := app.AppendRow(int64(1)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := app.Close(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	got := queryAll(t, db, "SELECT count(*), sum(v) FROM t")
	want := fmt.Sprint([][]string{{fmt.Sprint(4 * perWorker), fmt.Sprint(4 * perWorker)}})
	if fmt.Sprint(got) != want {
		t.Fatalf("got %v want %v", got, want)
	}
}
