package quack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
)

// Tx is an explicit transaction bound to one session. QuackDB uses
// HyPer-style serializable MVCC: readers never block writers, bulk
// updates conflict-check at row granularity, and a conflicting write
// aborts with an error the caller can retry.
type Tx struct {
	sess *core.Session
	done bool
}

// Begin starts an explicit transaction.
func (db *DB) Begin() (*Tx, error) {
	sess := db.core.NewSession()
	if _, err := sess.Execute("BEGIN"); err != nil {
		return nil, err
	}
	return &Tx{sess: sess}, nil
}

// Exec runs a statement inside the transaction.
func (t *Tx) Exec(sql string, args ...any) (int64, error) {
	if t.done {
		return 0, fmt.Errorf("quack: transaction already finished")
	}
	params, err := toValues(args)
	if err != nil {
		return 0, err
	}
	results, err := t.sess.Execute(sql, params...)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, r := range results {
		n += r.RowsAffected
	}
	return n, nil
}

// Query runs a SELECT inside the transaction; the result reflects the
// transaction's snapshot plus its own writes.
func (t *Tx) Query(sql string, args ...any) (*Rows, error) {
	if t.done {
		return nil, fmt.Errorf("quack: transaction already finished")
	}
	return query(t.sess, sql, args)
}

// Commit makes the transaction's changes durable and visible.
func (t *Tx) Commit() error {
	if t.done {
		return fmt.Errorf("quack: transaction already finished")
	}
	t.done = true
	_, err := t.sess.Execute("COMMIT")
	return err
}

// Rollback discards the transaction's changes.
func (t *Tx) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	_, err := t.sess.Execute("ROLLBACK")
	return err
}

// SetJoinStrategy overrides the adaptive hash-versus-merge join choice
// for queries in this transaction (experiments E7).
func (t *Tx) SetJoinStrategy(s JoinStrategy) { t.sess.JoinStrategy = exec.JoinStrategy(s) }

// SetThreads overrides the database's query parallelism for this
// transaction's session (<=0 returns to the database default).
func (t *Tx) SetThreads(n int) { t.sess.Threads = n }

// JoinStrategy selects the physical equi-join implementation.
type JoinStrategy int

// Join strategies.
const (
	// JoinAuto lets the buffer pool decide: hash join when the build
	// side fits the memory budget, out-of-core merge join otherwise.
	JoinAuto JoinStrategy = JoinStrategy(exec.JoinAuto)
	// JoinHash forces the in-memory hash join.
	JoinHash JoinStrategy = JoinStrategy(exec.JoinForceHash)
	// JoinMerge forces the out-of-core merge join.
	JoinMerge JoinStrategy = JoinStrategy(exec.JoinForceMerge)
)
