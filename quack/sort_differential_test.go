package quack_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/quack"
)

// sortFuzzDB builds a multi-segment table covering every column type,
// loaded with NULLs, NaNs, ±Inf and heavily duplicated key domains so
// random multi-key sorts exercise ties, the hidden tiebreak column and
// the total floating-point order.
func sortFuzzDB(t *testing.T, threads int) *quack.DB {
	t.Helper()
	db, err := quack.Open(":memory:", quack.WithThreads(threads))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, "CREATE TABLE sorty (b BOOLEAN, i INTEGER, l BIGINT, d DOUBLE, s VARCHAR, ts TIMESTAMP)")
	app, err := db.Appender("sorty")
	if err != nil {
		t.Fatalf("appender: %v", err)
	}
	epoch := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	const rows = 12_000 // ~12 segments
	for r := 0; r < rows; r++ {
		var b any = r%2 == 0
		var i any = int32((r * 7) % 5) // tiny domain: many ties
		var l any = int64((r * 13) % 23)
		var d any = float64((r*31)%11) / 2
		var s any = fmt.Sprintf("s%d", (r*17)%9)
		var ts any = epoch.Add(time.Duration((r*41)%13) * time.Hour)
		switch r % 101 {
		case 0:
			b = nil
		case 1:
			i = nil
		case 2:
			l = nil
		case 3:
			d = nil
		case 4:
			s = nil
		case 5:
			ts = nil
		}
		switch r % 97 {
		case 10:
			d = math.NaN()
		case 11:
			d = math.Inf(1)
		case 12:
			d = math.Inf(-1)
		}
		if err := app.AppendRow(b, i, l, d, s, ts); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatalf("close appender: %v", err)
	}
	return db
}

// TestDifferentialOrderByFuzz generates random multi-key ORDER BY
// queries (ASC/DESC, NULLS FIRST/LAST, every column type) and asserts
// row-for-row identity across thread counts — the parallel sort's
// determinism guarantee.
func TestDifferentialOrderByFuzz(t *testing.T) {
	seq := sortFuzzDB(t, 1)
	pars := map[int]*quack.DB{2: sortFuzzDB(t, 2), 8: sortFuzzDB(t, 8)}
	cols := []string{"b", "i", "l", "d", "s", "ts"}
	rng := rand.New(rand.NewSource(7))
	iters := fuzzIters(40)
	for q := 0; q < iters; q++ {
		nk := 1 + rng.Intn(3)
		perm := rng.Perm(len(cols))[:nk]
		keys := make([]string, 0, nk)
		for _, ci := range perm {
			k := cols[ci]
			if rng.Intn(2) == 1 {
				k += " DESC"
			}
			switch rng.Intn(3) {
			case 0:
				k += " NULLS FIRST"
			case 1:
				k += " NULLS LAST"
			}
			keys = append(keys, k)
		}
		query := "SELECT b, i, l, d, s, ts FROM sorty ORDER BY " + strings.Join(keys, ", ")
		want := queryAll(t, seq, query)
		for threads, par := range pars {
			got := queryAll(t, par, query)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("threads=%d query %q diverges:\n got (%d rows): %.300v\nwant (%d rows): %.300v",
					threads, query, len(got), got, len(want), want)
			}
		}
	}
}

// TestDifferentialNaNMinMax: min/max over NaN-bearing DOUBLE columns
// were order-sensitive under the parallel merge before types.Compare
// gained a total FP order (NaN greatest). The merged result must now be
// identical at every thread count and every merge order: max is NaN for
// groups containing one, min never is.
func TestDifferentialNaNMinMax(t *testing.T) {
	seq := sortFuzzDB(t, 1)
	queries := []string{
		"SELECT l, min(d), max(d) FROM sorty GROUP BY l",
		"SELECT min(d), max(d), count(d) FROM sorty",
		"SELECT i, max(d) FROM sorty GROUP BY i HAVING count(*) > 10",
	}
	for _, threads := range []int{2, 8} {
		par := sortFuzzDB(t, threads)
		for _, q := range queries {
			want := queryAll(t, seq, q)
			got := queryAll(t, par, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("threads=%d query %q diverges:\n got: %.300v\nwant: %.300v", threads, q, got, want)
			}
		}
	}
	// The fixture plants NaNs in d, so the global max must be NaN (it
	// sorts greatest) while min must stay finite.
	global := queryAll(t, seq, "SELECT min(d), max(d) FROM sorty")
	if global[0][1] != "NaN" {
		t.Errorf("max over NaN-bearing column = %q, want NaN", global[0][1])
	}
	if global[0][0] != "-Inf" {
		t.Errorf("min over NaN-bearing column = %q, want -Inf", global[0][0])
	}
}

// TestDifferentialOrderByNaN: ORDER BY over the NaN/±Inf-bearing DOUBLE
// column must produce one deterministic total order: -Inf first, NaN
// after +Inf, NULLs per the requested placement — at every thread count.
func TestDifferentialOrderByNaN(t *testing.T) {
	seq := sortFuzzDB(t, 1)
	par := sortFuzzDB(t, 8)
	for _, q := range []string{
		"SELECT d, l FROM sorty ORDER BY d, l, b, i, s, ts",
		"SELECT d FROM sorty ORDER BY d DESC NULLS LAST LIMIT 500",
	} {
		want := queryAll(t, seq, q)
		got := queryAll(t, par, q)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("query %q diverges:\n got: %.300v\nwant: %.300v", q, got, want)
		}
	}
	// ASC places NaN last among non-NULLs (after +Inf).
	rows := queryAll(t, seq, "SELECT d FROM sorty WHERE d IS NOT NULL ORDER BY d")
	if last := rows[len(rows)-1][0]; last != "NaN" {
		t.Fatalf("ASC sort put %q last, want NaN", last)
	}
	if first := rows[0][0]; first != "-Inf" {
		t.Fatalf("ASC sort put %q first, want -Inf", first)
	}
}
