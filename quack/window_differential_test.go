package quack_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/types"
	"repro/quack"
)

// This file is the differential guarantee of the window-function
// subsystem: every window query must return bit-identical results at
// threads 1/2/8, and must agree with an independent row-at-a-time
// reference evaluator implemented here over the raw table rows.

// ---- fixture ----

const (
	wRows = 6_000 // several segments, so parallel window builds fan out
	wID   = 0
	wP    = 1
	wG    = 2
	wO    = 3
	wV    = 4
	wD    = 5
)

var wColNames = []string{"id", "p", "g", "o", "v", "d"}
var wColTypes = []types.Type{types.BigInt, types.Varchar, types.BigInt, types.Double, types.BigInt, types.Double}

// windowFixture builds the same deterministic, NULL-bearing, tie-heavy
// dataset into a database and into the reference row set (insertion
// order — the engine's hidden tiebreak order).
func windowFixtureRows() [][]types.Value {
	groups := []string{"ash", "birch", "cedar", "fir", "oak"}
	rows := make([][]types.Value, 0, wRows)
	for i := 0; i < wRows; i++ {
		row := make([]types.Value, 6)
		row[wID] = types.NewBigInt(int64(i))
		if i%13 == 0 {
			row[wP] = types.NewNull(types.Varchar)
		} else {
			row[wP] = types.NewVarchar(groups[(i*7)%len(groups)])
		}
		if i%17 == 0 {
			row[wG] = types.NewNull(types.BigInt)
		} else {
			row[wG] = types.NewBigInt(int64((i * 3) % 4))
		}
		if i%7 == 0 {
			row[wO] = types.NewNull(types.Double)
		} else {
			row[wO] = types.NewDouble(float64((i*17)%300) / 4) // heavy ties
		}
		if i%11 == 0 {
			row[wV] = types.NewNull(types.BigInt)
		} else {
			row[wV] = types.NewBigInt(int64((i*29)%1000 - 500))
		}
		if i%9 == 0 {
			row[wD] = types.NewNull(types.Double)
		} else {
			row[wD] = types.NewDouble(float64((i*31)%997)/8 - 60)
		}
		rows = append(rows, row)
	}
	return rows
}

func windowDB(t *testing.T, threads int, rows [][]types.Value) *quack.DB {
	t.Helper()
	db, err := quack.Open(":memory:", quack.WithThreads(threads))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	mustExec(t, db, "CREATE TABLE w (id BIGINT, p VARCHAR, g BIGINT, o DOUBLE, v BIGINT, d DOUBLE)")
	app, err := db.Appender("w")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		vals := make([]any, len(row))
		for i, v := range row {
			if v.Null {
				vals[i] = nil
				continue
			}
			switch v.Type {
			case types.BigInt:
				vals[i] = v.I64
			case types.Double:
				vals[i] = v.F64
			case types.Varchar:
				vals[i] = v.Str
			}
		}
		if err := app.AppendRow(vals...); err != nil {
			t.Fatal(err)
		}
	}
	if err := app.Close(); err != nil {
		t.Fatal(err)
	}
	return db
}

// ---- case model ----

type refOrd struct {
	col        int
	desc       bool
	nullsFirst bool // resolved (default: NULLS LAST asc, FIRST desc)
	nullsSet   bool
}

type refBound struct {
	unbounded bool
	current   bool
	offset    int
	preceding bool
}

type refFrame struct {
	set        bool
	rows       bool
	start, end refBound
}

type refCase struct {
	fn    string // row_number, rank, dense_rank, lag, lead, count, count_star, sum, avg, min, max
	arg   int    // column index, -1 for count(*)
	off   int    // lag/lead
	def   types.Value
	part  []int
	ord   []refOrd
	frame refFrame
}

// sql renders the case as the engine's window expression.
func (c refCase) sql() string {
	var fn string
	switch c.fn {
	case "count_star":
		fn = "count(*)"
	case "row_number", "rank", "dense_rank":
		fn = c.fn + "()"
	case "lag", "lead":
		fn = fmt.Sprintf("%s(%s, %d", c.fn, wColNames[c.arg], c.off)
		if !c.def.Null {
			fn += ", " + c.def.String()
		}
		fn += ")"
	default:
		fn = fmt.Sprintf("%s(%s)", c.fn, wColNames[c.arg])
	}
	var sb strings.Builder
	sb.WriteString(fn + " OVER (")
	if len(c.part) > 0 {
		sb.WriteString("PARTITION BY ")
		for i, p := range c.part {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(wColNames[p])
		}
	}
	if len(c.ord) > 0 {
		if len(c.part) > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString("ORDER BY ")
		for i, o := range c.ord {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(wColNames[o.col])
			if o.desc {
				sb.WriteString(" DESC")
			}
			if o.nullsSet {
				if o.nullsFirst {
					sb.WriteString(" NULLS FIRST")
				} else {
					sb.WriteString(" NULLS LAST")
				}
			}
		}
	}
	if c.frame.set {
		bound := func(b refBound) string {
			switch {
			case b.unbounded && b.preceding:
				return "UNBOUNDED PRECEDING"
			case b.unbounded:
				return "UNBOUNDED FOLLOWING"
			case b.current:
				return "CURRENT ROW"
			case b.preceding:
				return fmt.Sprintf("%d PRECEDING", b.offset)
			default:
				return fmt.Sprintf("%d FOLLOWING", b.offset)
			}
		}
		kind := "RANGE"
		if c.frame.rows {
			kind = "ROWS"
		}
		sb.WriteString(fmt.Sprintf(" %s BETWEEN %s AND %s", kind, bound(c.frame.start), bound(c.frame.end)))
	}
	sb.WriteString(")")
	return sb.String()
}

// ---- reference evaluation ----

func refCompare(a, b types.Value) int {
	return types.Compare(a, b)
}

// refOrderLess orders partition rows by the case's keys; ties keep
// insertion order via stable sort (the engine's hidden tiebreak).
func refOrderLess(rows [][]types.Value, ord []refOrd) func(i, j int) bool {
	return func(i, j int) bool {
		for _, k := range ord {
			a, b := rows[i][k.col], rows[j][k.col]
			if a.Null || b.Null {
				if a.Null && b.Null {
					continue
				}
				return a.Null == k.nullsFirst
			}
			c := refCompare(a, b)
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
}

func refOrdEqual(a, b []types.Value, ord []refOrd) bool {
	for _, k := range ord {
		va, vb := a[k.col], b[k.col]
		if va.Null != vb.Null {
			return false
		}
		if !va.Null && refCompare(va, vb) != 0 {
			return false
		}
	}
	return true
}

// evalRef computes the expected value of the case for every row id.
func evalRef(t *testing.T, rows [][]types.Value, c refCase) map[int64]types.Value {
	t.Helper()
	// Partition the insertion-ordered rows.
	parts := make(map[string][]int)
	var partOrder []string
	for i, row := range rows {
		var key strings.Builder
		for _, p := range c.part {
			v := row[p]
			if v.Null {
				key.WriteString("\x00N")
			} else {
				key.WriteString("\x01" + v.String() + "\x00")
			}
		}
		k := key.String()
		if _, ok := parts[k]; !ok {
			partOrder = append(partOrder, k)
		}
		parts[k] = append(parts[k], i)
	}
	out := make(map[int64]types.Value, len(rows))
	for _, pk := range partOrder {
		idxs := append([]int(nil), parts[pk]...)
		sort.SliceStable(idxs, func(a, b int) bool {
			return refOrderLess(rows, c.ord)(idxs[a], idxs[b])
		})
		n := len(idxs)
		// Peer groups over the order keys.
		peerStart := make([]int, n)
		peerEnd := make([]int, n)
		dense := make([]int64, n)
		gs, rk := 0, int64(1)
		for i := 0; i < n; i++ {
			if i > 0 && !refOrdEqual(rows[idxs[i-1]], rows[idxs[i]], c.ord) {
				for k := gs; k < i; k++ {
					peerEnd[k] = i - 1
				}
				gs = i
				rk++
			}
			peerStart[i] = gs
			dense[i] = rk
		}
		for k := gs; k < n; k++ {
			peerEnd[k] = n - 1
		}
		for i := 0; i < n; i++ {
			id := rows[idxs[i]][wID].I64
			switch c.fn {
			case "row_number":
				out[id] = types.NewBigInt(int64(i) + 1)
			case "rank":
				out[id] = types.NewBigInt(int64(peerStart[i]) + 1)
			case "dense_rank":
				out[id] = types.NewBigInt(dense[i])
			case "lag", "lead":
				j := i + c.off
				if c.fn == "lag" {
					j = i - c.off
				}
				if j < 0 || j >= n {
					def := c.def
					if def.Null {
						def = types.NewNull(wColTypes[c.arg])
					} else {
						cv, err := def.Cast(wColTypes[c.arg])
						if err != nil {
							t.Fatalf("default cast: %v", err)
						}
						def = cv
					}
					out[id] = def
				} else {
					out[id] = rows[idxs[j]][c.arg]
				}
			default:
				lo, hi := refFrameBounds(c, i, n, peerStart, peerEnd)
				out[id] = refAgg(c, rows, idxs, lo, hi)
			}
		}
	}
	return out
}

func refFrameBounds(c refCase, i, n int, peerStart, peerEnd []int) (int, int) {
	if !c.frame.set {
		if len(c.ord) == 0 {
			return 0, n - 1
		}
		return 0, peerEnd[i]
	}
	resolve := func(b refBound, start bool) int {
		switch {
		case b.unbounded && b.preceding:
			return 0
		case b.unbounded:
			return n - 1
		case b.current:
			if c.frame.rows {
				return i
			}
			if start {
				return peerStart[i]
			}
			return peerEnd[i]
		case b.preceding:
			return i - b.offset
		default:
			return i + b.offset
		}
	}
	lo, hi := resolve(c.frame.start, true), resolve(c.frame.end, false)
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}

// refAgg folds the frame rows left-to-right, mirroring SQL aggregate
// semantics (NULLs skipped; empty frames yield NULL, count 0).
func refAgg(c refCase, rows [][]types.Value, idxs []int, lo, hi int) types.Value {
	if c.fn == "count_star" {
		if lo > hi {
			return types.NewBigInt(0)
		}
		return types.NewBigInt(int64(hi - lo + 1))
	}
	argT := wColTypes[c.arg]
	var (
		count   int64
		sumI    int64
		sumF    float64
		best    types.Value
		bestSet bool
	)
	for r := lo; r <= hi; r++ {
		v := rows[idxs[r]][c.arg]
		if v.Null {
			continue
		}
		count++
		switch c.fn {
		case "sum", "avg":
			if argT == types.Double {
				sumF += v.F64
			} else {
				sumI += v.I64
			}
		case "min", "max":
			if !bestSet {
				best, bestSet = v, true
			} else if cv := refCompare(v, best); (c.fn == "max" && cv > 0) || (c.fn == "min" && cv < 0) {
				best = v
			}
		}
	}
	switch c.fn {
	case "count":
		return types.NewBigInt(count)
	case "sum":
		if count == 0 {
			return types.NewNull(argT)
		}
		if argT == types.Double {
			return types.NewDouble(sumF)
		}
		return types.NewBigInt(sumI)
	case "avg":
		if count == 0 {
			return types.NewNull(types.Double)
		}
		if argT == types.Double {
			return types.NewDouble(sumF / float64(count))
		}
		return types.NewDouble(float64(sumI) / float64(count))
	default: // min, max
		if !bestSet {
			return types.NewNull(argT)
		}
		return best
	}
}

// ---- the differential tests ----

func fixedWindowCases() []refCase {
	ordO := []refOrd{{col: wO}}
	ordOID := []refOrd{{col: wO}, {col: wID}}
	partP := []int{wP}
	return []refCase{
		{fn: "row_number", arg: -1, part: partP, ord: ordO},
		{fn: "rank", arg: -1, part: partP, ord: ordO},
		{fn: "dense_rank", arg: -1, part: partP, ord: []refOrd{{col: wO, desc: true, nullsFirst: false, nullsSet: true}}},
		{fn: "sum", arg: wV, part: partP, ord: ordO},
		{fn: "sum", arg: wD, part: partP, ord: ordOID},
		{fn: "sum", arg: wV, part: partP}, // whole partition
		{fn: "count_star", arg: -1, part: partP},
		{fn: "count", arg: wV, part: partP, ord: ordO},
		{fn: "avg", arg: wD, part: partP, ord: ordOID,
			frame: refFrame{set: true, rows: true, start: refBound{offset: 3, preceding: true}, end: refBound{current: true}}},
		{fn: "min", arg: wO, part: partP, ord: []refOrd{{col: wID}},
			frame: refFrame{set: true, rows: true, start: refBound{offset: 2, preceding: true}, end: refBound{offset: 2}}},
		{fn: "max", arg: wV, ord: ordOID}, // no partition
		{fn: "sum", arg: wD},              // no partition, no order: grand total
		{fn: "lag", arg: wV, off: 1, def: types.NewNull(types.BigInt), part: partP, ord: ordOID},
		{fn: "lead", arg: wO, off: 2, def: types.NewDouble(-1), part: partP, ord: []refOrd{{col: wID}}},
		{fn: "sum", arg: wV, part: partP, ord: ordOID,
			frame: refFrame{set: true, rows: true, start: refBound{current: true}, end: refBound{unbounded: true}}},
		{fn: "sum", arg: wD, part: partP, ord: ordOID,
			frame: refFrame{set: true, rows: true, start: refBound{offset: 5, preceding: true}, end: refBound{offset: 2, preceding: true}}},
		{fn: "avg", arg: wV, part: partP, ord: ordOID,
			frame: refFrame{set: true, start: refBound{unbounded: true, preceding: true}, end: refBound{current: true}}}, // RANGE
		{fn: "count", arg: wD, part: []int{wP, wG}, ord: ordOID,
			frame: refFrame{set: true, rows: true, start: refBound{unbounded: true, preceding: true}, end: refBound{offset: 1}}},
	}
}

func randomWindowCases(rng *rand.Rand, n int) []refCase {
	fns := []string{"row_number", "rank", "dense_rank", "lag", "lead", "count", "count_star", "sum", "avg", "min", "max"}
	argCols := []int{wO, wV, wD}
	parts := [][]int{nil, {wP}, {wG}, {wP, wG}}
	var out []refCase
	for len(out) < n {
		c := refCase{fn: fns[rng.Intn(len(fns))], arg: -1}
		switch c.fn {
		case "lag", "lead":
			c.arg = argCols[rng.Intn(len(argCols))]
			c.off = rng.Intn(4)
			if rng.Intn(2) == 0 {
				c.def = types.NewBigInt(int64(rng.Intn(100) - 50))
			} else {
				c.def = types.NewNull(types.BigInt)
			}
		case "count", "sum", "avg", "min", "max":
			c.arg = argCols[rng.Intn(len(argCols))]
		}
		c.part = parts[rng.Intn(len(parts))]
		// Order keys: always end with id for a total order half the
		// time; ties otherwise exercise the peer/tiebreak machinery.
		nOrd := rng.Intn(3)
		used := map[int]bool{}
		for k := 0; k < nOrd; k++ {
			col := []int{wO, wV, wD, wID}[rng.Intn(4)]
			if used[col] {
				continue
			}
			used[col] = true
			o := refOrd{col: col, desc: rng.Intn(2) == 0}
			o.nullsFirst = o.desc
			if rng.Intn(3) == 0 {
				o.nullsSet = true
				o.nullsFirst = rng.Intn(2) == 0
			}
			c.ord = append(c.ord, o)
		}
		// Random ROWS frame for aggregates with ORDER BY.
		if len(c.ord) > 0 && rng.Intn(2) == 0 {
			switch c.fn {
			case "count", "count_star", "sum", "avg", "min", "max":
				f := refFrame{set: true, rows: true}
				switch rng.Intn(3) {
				case 0:
					f.start = refBound{unbounded: true, preceding: true}
				case 1:
					f.start = refBound{offset: rng.Intn(6), preceding: true}
				default:
					f.start = refBound{current: true}
				}
				switch rng.Intn(3) {
				case 0:
					f.end = refBound{unbounded: true}
				case 1:
					f.end = refBound{offset: rng.Intn(6)}
				default:
					f.end = refBound{current: true}
				}
				c.frame = f
			}
		}
		out = append(out, c)
	}
	return out
}

// TestWindowDifferentialFuzz: every case must match the reference
// evaluator AND be bit-identical across thread counts. Runs as part of
// the CI differential matrix (QUACK_THREADS legs included via the
// default-threads database).
func TestWindowDifferentialFuzz(t *testing.T) {
	rows := windowFixtureRows()
	dbs := map[string]*quack.DB{
		"t1": windowDB(t, 1, rows),
		"t2": windowDB(t, 2, rows),
		"t8": windowDB(t, 8, rows),
	}
	cases := fixedWindowCases()
	cases = append(cases, randomWindowCases(rand.New(rand.NewSource(20260729)), fuzzIters(25))...)
	for ci, c := range cases {
		expr := c.sql()
		q := "SELECT id, " + expr + " FROM w ORDER BY id"
		want := evalRef(t, rows, c)
		var baseline [][]string
		for name, db := range dbs {
			got := queryAll(t, db, q)
			if len(got) != len(rows) {
				t.Fatalf("case %d %s [%s]: %d rows, want %d", ci, expr, name, len(got), len(rows))
			}
			mismatches := 0
			for _, row := range got {
				var id int64
				fmt.Sscan(row[0], &id)
				if exp := want[id].String(); row[1] != exp {
					if mismatches < 5 {
						t.Errorf("case %d %s [%s] id=%d: got %q, want %q", ci, expr, name, id, row[1], exp)
					}
					mismatches++
				}
			}
			if mismatches > 0 {
				t.Fatalf("case %d %s [%s]: %d mismatches vs reference", ci, expr, name, mismatches)
			}
			if baseline == nil {
				baseline = got
			} else if fmt.Sprint(got) != fmt.Sprint(baseline) {
				t.Fatalf("case %d %s [%s]: diverges across thread counts", ci, expr, name)
			}
		}
	}
}

// TestWindowDifferentialOrder: without an outer ORDER BY the engine
// emits (partition, order, input position) order — which must be
// bit-identical, including row order, at every thread count.
func TestWindowDifferentialOrder(t *testing.T) {
	rows := windowFixtureRows()
	seq := windowDB(t, 1, rows)
	queries := []string{
		"SELECT p, o, row_number() OVER (PARTITION BY p ORDER BY o) FROM w",
		"SELECT id, sum(v) OVER (PARTITION BY g ORDER BY o, id) FROM w",
		"SELECT id, rank() OVER (ORDER BY d DESC) FROM w WHERE v > 0",
		"SELECT p, count(*) OVER (PARTITION BY p) FROM w WHERE o IS NOT NULL",
		// Window over an aggregate (breaker below the window).
		"SELECT p, rank() OVER (ORDER BY count(*) DESC, p) FROM w GROUP BY p",
		// Projection above the window runs on the exchange.
		"SELECT id * 2, row_number() OVER (PARTITION BY p ORDER BY o, id) + 10 FROM w",
		// Window feeding an outer sort on the window column.
		"SELECT id, dense_rank() OVER (PARTITION BY g ORDER BY v DESC) AS dr FROM w ORDER BY dr, id LIMIT 500",
	}
	for _, threads := range []int{2, 8} {
		par := windowDB(t, threads, rows)
		for _, q := range queries {
			want := queryAll(t, seq, q)
			got := queryAll(t, par, q)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("threads=%d query %q diverges:\n got (%d rows): %.400v\nwant (%d rows): %.400v",
					threads, q, len(got), got, len(want), want)
			}
		}
	}
}

// TestWindowDifferentialDefaultThreads runs the acceptance query on a
// database with the engine-wide default thread count (QUACK_THREADS in
// the CI matrix) against the single-threaded baseline.
func TestWindowDifferentialDefaultThreads(t *testing.T) {
	rows := windowFixtureRows()
	seq := windowDB(t, 1, rows)
	def := func() *quack.DB {
		db, err := quack.Open(":memory:")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		mustExec(t, db, "CREATE TABLE w (id BIGINT, p VARCHAR, g BIGINT, o DOUBLE, v BIGINT, d DOUBLE)")
		app, _ := db.Appender("w")
		for _, row := range rows {
			vals := make([]any, len(row))
			for i, v := range row {
				if !v.Null {
					switch v.Type {
					case types.BigInt:
						vals[i] = v.I64
					case types.Double:
						vals[i] = v.F64
					case types.Varchar:
						vals[i] = v.Str
					}
				}
			}
			if err := app.AppendRow(vals...); err != nil {
				t.Fatal(err)
			}
		}
		if err := app.Close(); err != nil {
			t.Fatal(err)
		}
		return db
	}()
	q := "SELECT id, row_number() OVER (PARTITION BY p ORDER BY o), sum(v) OVER (PARTITION BY p ORDER BY o) FROM w"
	want := queryAll(t, seq, q)
	got := queryAll(t, def, q)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("default-thread window query diverges:\n got: %.400v\nwant: %.400v", got, want)
	}
}

// TestWindowRowEngineDifferential: the tuple-at-a-time row engine (the
// E6 ablation baseline) must agree with the vectorized engine on window
// queries — values AND row order — so the ablation can run the window
// workloads instead of erroring on WindowNode.
func TestWindowRowEngineDifferential(t *testing.T) {
	rows := windowFixtureRows()
	db := windowDB(t, 1, rows)
	queries := []string{
		"SELECT id, row_number() OVER (PARTITION BY p ORDER BY o) FROM w",
		"SELECT id, rank() OVER (PARTITION BY g ORDER BY o DESC NULLS LAST), dense_rank() OVER (PARTITION BY g ORDER BY o DESC NULLS LAST) FROM w",
		"SELECT id, sum(d) OVER (PARTITION BY p ORDER BY o, id) FROM w",
		"SELECT id, avg(v) OVER (PARTITION BY p ORDER BY o, id ROWS BETWEEN 3 PRECEDING AND 1 FOLLOWING) FROM w",
		"SELECT id, lag(v, 2, -1) OVER (PARTITION BY p ORDER BY o, id), lead(o) OVER (PARTITION BY p ORDER BY o, id) FROM w",
		"SELECT id, count(*) OVER (PARTITION BY p), min(o) OVER (PARTITION BY p), max(d) OVER (PARTITION BY p) FROM w",
		"SELECT id, sum(v) OVER (ORDER BY o, id) FROM w WHERE v IS NOT NULL ORDER BY id LIMIT 800",
	}
	sess := db.Internal().NewSession()
	for _, q := range queries {
		want := queryAll(t, db, q)
		got, err := sess.ExecuteRowEngine(q)
		if err != nil {
			t.Fatalf("row engine %q: %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("row engine %q: %d rows, want %d", q, len(got), len(want))
		}
		for i, row := range got {
			if len(row) != len(want[i]) {
				t.Fatalf("row engine %q row %d: %d cols, want %d", q, i, len(row), len(want[i]))
			}
			for c, v := range row {
				if v.String() != want[i][c] {
					t.Fatalf("row engine %q row %d col %d: got %q, want %q", q, i, c, v.String(), want[i][c])
				}
			}
		}
	}
}
