// Package repro_test holds the benchmark per table/figure of the paper
// (see DESIGN.md's experiment index). Each benchmark wraps the shared
// experiment implementation from internal/bench, which cmd/quack-bench
// also uses to print the paper-style tables at full scale:
//
//	go test -bench=. -benchmem
//	go run ./cmd/quack-bench -exp all
package repro_test

import (
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/quack"
)

// BenchmarkTable1FailureModel (E1) regenerates Table 1's 30-day failure
// probabilities with the calibrated two-population Monte-Carlo.
func BenchmarkTable1FailureModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table1(io.Discard, 500_000, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Reactive (E2) replays Figure 1's reactive-compression
// timeline: the DBMS re-encodes its intermediate as app RAM ramps.
func BenchmarkFigure1Reactive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Figure1(io.Discard, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkANCodeOverhead (E3) measures AN-code hardening overhead; the
// paper cites 1.1x-1.6x (SIMD implementations).
func BenchmarkANCodeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.ANCode(io.Discard, 1_000_000, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Slowdown, "slowdown-x")
		b.ReportMetric(res.DetectionRate*100, "detect-%")
	}
}

// Transfer benchmarks (E4): exporting a result set through the two APIs.
func BenchmarkTransferValueAPI(b *testing.B) {
	benchTransfer(b, false)
}

func BenchmarkTransferChunkAPI(b *testing.B) {
	benchTransfer(b, true)
}

func benchTransfer(b *testing.B, chunks bool) {
	const rows = 1_000_000
	db, err := quack.Open(":memory:")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (a BIGINT, v DOUBLE)"); err != nil {
		b.Fatal(err)
	}
	app, _ := db.Appender("t")
	for i := 0; i < rows; i++ {
		app.AppendRow(int64(i), float64(i))
	}
	if err := app.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(rows * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rowsRes, err := db.Query("SELECT a, v FROM t")
		if err != nil {
			b.Fatal(err)
		}
		var sum int64
		if chunks {
			for {
				c := rowsRes.NextChunk()
				if c == nil {
					break
				}
				for _, v := range c.Cols[0].I64[:c.Len()] {
					sum += v
				}
			}
		} else {
			var a int64
			var v float64
			for rowsRes.Next() {
				if err := rowsRes.Scan(&a, &v); err != nil {
					b.Fatal(err)
				}
				sum += a
			}
		}
		if sum != int64(rows)*(rows-1)/2 {
			b.Fatalf("bad sum %d", sum)
		}
	}
}

// BenchmarkBulkUpdateInPlace / ...RewriteBaseline (E5): the paper's
// UPDATE t SET d = NULL WHERE d = -999 wrangling pattern.
func BenchmarkBulkUpdateInPlace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := quack.Open(":memory:")
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.GenSalesTable(db, "t", 500_000, 0.3, 42); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := db.Exec("UPDATE t SET d = NULL WHERE d = -999"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
}

func BenchmarkBulkUpdateRewriteBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, err := quack.Open(":memory:")
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.GenSalesTable(db, "t", 500_000, 0.3, 42); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := db.Exec(`CREATE TABLE t2 AS SELECT id, region, qty, price,
			CASE WHEN d = -999 THEN NULL ELSE d END AS d FROM t`); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		db.Close()
		b.StartTimer()
	}
}

// Engine benchmarks (E6): vectorized versus tuple-at-a-time execution of
// the same filtered aggregation plan.
func BenchmarkVectorizedEngine(b *testing.B) {
	benchEngine(b, false)
}

func BenchmarkRowEngine(b *testing.B) {
	benchEngine(b, true)
}

const engineQuery = "SELECT region, count(*), sum(qty), avg(price), sum(price * CAST(qty AS DOUBLE)) FROM t WHERE qty > 10 AND price < 900.0 GROUP BY region"

func benchEngine(b *testing.B, rowEngine bool) {
	db, err := quack.Open(":memory:")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := bench.GenSalesTable(db, "t", 500_000, 0, 7); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rowEngine {
			rows, err := db.Internal().NewSession().ExecuteRowEngine(engineQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(rows) == 0 {
				b.Fatal("no groups")
			}
		} else {
			rows, err := db.Query(engineQuery)
			if err != nil {
				b.Fatal(err)
			}
			if rows.NumRows() == 0 {
				b.Fatal("no groups")
			}
		}
	}
}

// Join benchmarks (E7): hash vs out-of-core merge join.
func BenchmarkJoinHash(b *testing.B) {
	benchJoin(b, quack.JoinHash, 0)
}

func BenchmarkJoinMergeSpilling(b *testing.B) {
	benchJoin(b, quack.JoinMerge, 4<<20)
}

func BenchmarkJoinAutoUnderPressure(b *testing.B) {
	benchJoin(b, quack.JoinAuto, 4<<20)
}

func benchJoin(b *testing.B, strategy quack.JoinStrategy, limit int64) {
	db, err := quack.Open(":memory:", quack.WithMemoryLimit(limit))
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const rows = 200_000
	if err := bench.GenKeyedTable(db, "build", rows, rows, 1); err != nil {
		b.Fatal(err)
	}
	if err := bench.GenKeyedTable(db, "probe", rows, rows, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := db.Begin()
		if err != nil {
			b.Fatal(err)
		}
		tx.SetJoinStrategy(strategy)
		res, err := tx.Query("SELECT count(*) FROM probe JOIN build ON probe.k = build.k")
		if err != nil {
			b.Fatal(err)
		}
		res.Next()
		var n int64
		res.Scan(&n)
		if n == 0 {
			b.Fatal("empty join")
		}
		tx.Rollback()
	}
}

// Checksum benchmarks (E8): cold scans with and without verify-on-read.
func BenchmarkChecksumVerifiedScan(b *testing.B) {
	benchChecksum(b, true)
}

func BenchmarkChecksumDisabledScan(b *testing.B) {
	benchChecksum(b, false)
}

func benchChecksum(b *testing.B, verify bool) {
	dir := b.TempDir()
	path := dir + "/bench.qdb"
	db, err := quack.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := bench.GenSalesTable(db, "t", 500_000, 0.1, 5); err != nil {
		b.Fatal(err)
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := []quack.Option{}
		if !verify {
			opts = append(opts, quack.WithoutChecksumVerification())
		}
		db, err := quack.Open(path, opts...)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := db.Query("SELECT sum(qty), sum(price) FROM t")
		if err != nil {
			b.Fatal(err)
		}
		rows.Next()
		db.Close()
	}
}

// BenchmarkConcurrentOLAPETL (E9): dashboard throughput — readers and
// writers share one embedded database under MVCC.
func BenchmarkConcurrentOLAPETL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Dashboard(io.Discard, 100_000, 500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		if res.Inconsistent > 0 {
			b.Fatalf("%d inconsistent snapshots", res.Inconsistent)
		}
		b.ReportMetric(float64(res.Queries)*2, "queries/s")
		b.ReportMetric(float64(res.Updates)*2, "updates/s")
	}
}

// Parallel benchmarks (E10): the morsel-driven engine at fixed worker
// counts. sub-benchmark names carry the thread count so the BENCH
// trajectory records the scaling curve.
func BenchmarkParallelScan(b *testing.B) {
	benchParallel(b, "SELECT id, qty, price FROM t WHERE qty > 98 AND price < 10.0")
}

func BenchmarkParallelAgg(b *testing.B) {
	benchParallel(b, "SELECT region, count(*), sum(qty), avg(price), min(price), max(price) FROM t GROUP BY region")
}

func BenchmarkParallelSort(b *testing.B) {
	benchParallel(b, "SELECT id, qty, price FROM t ORDER BY qty DESC, price, id")
}

// BenchmarkWindow: partitioned window evaluation — per-worker sorted
// runs, merged partition stream, frames evaluated on the exchange pool.
func BenchmarkWindow(b *testing.B) {
	benchParallel(b, "SELECT id, row_number() OVER (PARTITION BY region ORDER BY qty DESC, id), sum(price) OVER (PARTITION BY region ORDER BY qty DESC, id) FROM t")
}

func benchParallel(b *testing.B, query string) {
	db, err := quack.Open(":memory:")
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := bench.GenSalesTable(db, "t", 1_000_000, 0.0, 11); err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			if _, err := db.Exec(fmt.Sprintf("PRAGMA threads=%d", threads)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := db.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				for rows.NextChunk() != nil {
				}
			}
		})
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
